//! End-to-end tests of the installed `slo` binary (real process spawn,
//! real files) against the shipped sample program.

use std::path::PathBuf;
use std::process::Command;

fn slo() -> Command {
    Command::new(env!("CARGO_BIN_EXE_slo"))
}

fn sample() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // repo root
    p.push("examples/ir/interleaved.sir");
    assert!(p.exists(), "sample missing: {}", p.display());
    p
}

#[test]
fn analyze_sample_file() {
    let out = slo()
        .args(["analyze"])
        .arg(sample())
        .output()
        .expect("spawn slo");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 record types, 1 legal"));
    assert!(text.contains("item"));
}

#[test]
fn optimize_writes_output_file() {
    let dir = std::env::temp_dir();
    let out_path = dir.join(format!("slo-e2e-{}.sir", std::process::id()));
    let out = slo()
        .args(["optimize"])
        .arg(sample())
        .arg("-o")
        .arg(&out_path)
        .output()
        .expect("spawn slo");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&out_path).expect("output written");
    assert!(written.contains("record item"));
    assert!(written.contains("item_cold"), "split must have happened");
    // the emitted IR is itself runnable
    let run = slo()
        .args(["run"])
        .arg(&out_path)
        .output()
        .expect("spawn slo");
    assert!(run.status.success());
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn bad_input_exits_nonzero() {
    let out = slo()
        .args(["run", "/nonexistent.sir"])
        .output()
        .expect("spawn slo");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn help_exits_zero() {
    let out = slo().args(["help"]).output().expect("spawn slo");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: slo"));
}

/// Exit codes are per error domain: scripts can branch on *why*.
#[test]
fn exit_codes_distinguish_error_domains() {
    // usage error -> 2
    let out = slo().args(["bogus-command"]).output().expect("spawn slo");
    assert_eq!(out.status.code(), Some(2));

    // missing file (I/O) -> 8
    let out = slo()
        .args(["run", "/nonexistent.sir"])
        .output()
        .expect("spawn slo");
    assert_eq!(out.status.code(), Some(8));

    // unparseable IR -> 3
    let dir = std::env::temp_dir();
    let bad = dir.join(format!("slo-e2e-bad-{}.sir", std::process::id()));
    std::fs::write(&bad, "record broken {").expect("write temp");
    let out = slo().args(["run"]).arg(&bad).output().expect("spawn slo");
    assert_eq!(out.status.code(), Some(3));
    let _ = std::fs::remove_file(&bad);
}

fn smoke_manifest() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("examples/batch/smoke.txt");
    assert!(p.exists(), "manifest missing: {}", p.display());
    p
}

#[test]
fn batch_runs_the_smoke_manifest_strictly() {
    let out = slo()
        .args(["batch"])
        .arg(smoke_manifest())
        .args(["--workers", "2", "--strict", "--json"])
        .output()
        .expect("spawn slo");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("optimized"));
    assert!(text.contains("[cached]"), "repeats must hit the cache");
    assert!(text.contains("0 advisory, 0 failed"));
    assert!(text.contains("\"cache_hit_rate\""), "--json metrics block");
}

#[test]
fn batch_strict_fails_on_degraded_jobs() {
    let dir = std::env::temp_dir().join(format!("slo-e2e-batch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("bad.sir"), "record broken {").expect("write");
    std::fs::write(dir.join("jobs.txt"), "bad.sir\n").expect("write");

    let out = slo()
        .args(["batch"])
        .arg(dir.join("jobs.txt"))
        .args(["--strict"])
        .output()
        .expect("spawn slo");
    assert_eq!(
        out.status.code(),
        Some(2),
        "strict batch failure is a usage error"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("failed job"));

    // without --strict the same batch reports and exits zero
    let out = slo()
        .args(["batch"])
        .arg(dir.join("jobs.txt"))
        .output()
        .expect("spawn slo");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("failed"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_processes_jobs_from_stdin() {
    use std::io::Write as _;
    let mut child = slo()
        .args(["serve"])
        .current_dir(smoke_manifest().parent().expect("dir"))
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn slo serve");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(
            b"../ir/hotcold.sir scheme=ispbo\n../ir/hotcold.sir scheme=ispbo\nmetrics\nquit\n",
        )
        .expect("write jobs");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"status\":\"optimized\""), "{text}");
    assert!(
        text.contains("\"cached\":true"),
        "second identical job hits the cache:\n{text}"
    );
    assert!(
        text.contains("\"cache_hits\": 1"),
        "metrics command answers"
    );
    assert!(text.contains("served 2 job(s)"));
}

/// A malformed manifest line mid-stream must degrade to a structured
/// error reply without killing the serve loop: jobs after it still
/// run, and every error carries a machine-parseable `code`.
#[test]
fn serve_survives_malformed_manifest_lines_mid_stream() {
    use std::io::Write as _;
    let mut child = slo()
        .args(["serve"])
        .current_dir(smoke_manifest().parent().expect("dir"))
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn slo serve");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(
            b"../ir/hotcold.sir scheme=ispbo\n\
              /nonexistent-program.sir scheme=ispbo\n\
              ../ir/hotcold.sir scheme=bogus-scheme\n\
              ../ir/hotcold.sir repeat=zero\n\
              ../ir/hotcold.sir scheme=ispbo\n\
              quit\n",
        )
        .expect("write jobs");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success(), "malformed lines must not kill serve");
    let text = String::from_utf8_lossy(&out.stdout);
    let errors: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"status\":\"error\""))
        .collect();
    assert_eq!(
        errors.len(),
        3,
        "each bad line answers with one error reply:\n{text}"
    );
    for line in &errors {
        let r = slo_service::Response::parse(line).expect("error reply parses");
        assert!(r.code.is_some(), "error replies carry a code: {line}");
        assert!(r.message.is_some(), "error replies carry a message: {line}");
    }
    assert!(
        text.contains("served 2 job(s)"),
        "both good jobs (before and after the bad lines) ran:\n{text}"
    );
    assert!(
        text.contains("\"cached\":true"),
        "the second good job still hits the cache:\n{text}"
    );
}

/// `--legacy-lines` keeps the pre-protocol human-readable replies for
/// scripts that scraped them: `error: ` prefixes and the `[cached]`
/// suffix, no JSON.
#[test]
fn serve_legacy_lines_keeps_the_old_format() {
    use std::io::Write as _;
    let mut child = slo()
        .args(["serve", "--legacy-lines"])
        .current_dir(smoke_manifest().parent().expect("dir"))
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn slo serve");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(
            b"../ir/hotcold.sir scheme=ispbo\n\
              ../ir/hotcold.sir scheme=bogus-scheme\n\
              ../ir/hotcold.sir scheme=ispbo\n\
              quit\n",
        )
        .expect("write jobs");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        text.lines().filter(|l| l.starts_with("error: ")).count(),
        1,
        "legacy error prefix:\n{text}"
    );
    assert!(text.contains("[cached]"), "legacy cache suffix:\n{text}");
    assert!(
        !text.contains("\"status\""),
        "no JSON in legacy mode:\n{text}"
    );
}

/// `--trace-json` writes a Chrome trace that the binary's own
/// conformance checker accepts, with every pipeline phase present —
/// and tracing does not change the compiled output.
#[test]
fn traced_compile_passes_trace_check_and_output_is_unchanged() {
    // Same output filename in two directories, so the `wrote ...` line
    // (and with it the whole stdout) is comparable byte-for-byte.
    let pid = std::process::id();
    let dir_plain = std::env::temp_dir().join(format!("slo-e2e-plain-{pid}"));
    let dir_traced = std::env::temp_dir().join(format!("slo-e2e-traced-{pid}"));
    std::fs::create_dir_all(&dir_plain).expect("mkdir");
    std::fs::create_dir_all(&dir_traced).expect("mkdir");
    let out_plain = dir_plain.join("out.sir");
    let out_traced = dir_traced.join("out.sir");
    let trace = std::env::temp_dir().join(format!("slo-e2e-trace-{pid}.json"));

    let plain = slo()
        .args(["optimize"])
        .arg(sample())
        .args(["-o", "out.sir"])
        .current_dir(&dir_plain)
        .output()
        .expect("spawn slo");
    assert!(plain.status.success());

    let traced = slo()
        .args(["compile"]) // the optimize alias
        .arg(sample())
        .args(["-o", "out.sir"])
        .arg("--trace-json")
        .arg(&trace)
        .current_dir(&dir_traced)
        .output()
        .expect("spawn slo");
    assert!(
        traced.status.success(),
        "{}",
        String::from_utf8_lossy(&traced.stderr)
    );
    assert_eq!(
        std::fs::read(&out_plain).expect("plain output"),
        std::fs::read(&out_traced).expect("traced output"),
        "tracing changed the compiled program"
    );
    assert_eq!(
        plain.stdout, traced.stdout,
        "tracing changed the human-readable report"
    );

    let check = slo()
        .args(["trace-check"])
        .arg(&trace)
        .output()
        .expect("spawn slo trace-check");
    assert!(
        check.status.success(),
        "{}",
        String::from_utf8_lossy(&check.stderr)
    );
    let text = String::from_utf8_lossy(&check.stdout);
    assert!(text.contains("OK"), "{text}");
    for phase in [
        "parse",
        "legality",
        "escape",
        "profile",
        "plan",
        "transform",
        "verify",
        "compile",
    ] {
        assert!(text.contains(phase), "missing `{phase}` span: {text}");
    }
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_dir_all(&dir_plain);
    let _ = std::fs::remove_dir_all(&dir_traced);
}

/// `trace-check` rejects a file that is not a conformant trace.
#[test]
fn trace_check_rejects_garbage() {
    let dir = std::env::temp_dir();
    let bad = dir.join(format!("slo-e2e-badtrace-{}.json", std::process::id()));
    std::fs::write(&bad, "{\"traceEvents\": 42}").expect("write temp");
    let out = slo()
        .args(["trace-check"])
        .arg(&bad)
        .output()
        .expect("spawn slo");
    assert_eq!(
        out.status.code(),
        Some(3),
        "non-conformant trace is a parse error"
    );
    let _ = std::fs::remove_file(&bad);
}

/// Kill-and-recover: a serve session with `--journal` is SIGKILLed
/// mid-stream after completing two jobs; the restarted session replays
/// them from the journal (answering without recomputation) and only
/// computes the genuinely new jobs.
#[test]
fn serve_journal_recovers_after_kill() {
    use std::io::{BufRead as _, BufReader, Write as _};
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("slo-e2e-journal-{pid}"));
    std::fs::create_dir_all(&dir).expect("mkdir");
    const SIR: &str = "func main() -> i64 {\nbb0:\n  ret 7\n}\n";
    for name in ["a.sir", "b.sir", "c.sir", "d.sir"] {
        std::fs::write(dir.join(name), SIR).expect("write sir");
    }
    let journal = dir.join("serve.jsonl");
    let _ = std::fs::remove_file(&journal);

    // Session 1: two jobs complete (journaled + flushed), then SIGKILL
    // — no EOF, no graceful shutdown.
    let mut child = slo()
        .args(["serve", "--journal"])
        .arg(&journal)
        .current_dir(&dir)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn slo serve");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"a.sir scheme=ispbo\nb.sir scheme=ispbo\n")
        .expect("write jobs");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout"));
    let mut seen = Vec::new();
    for _ in 0..3 {
        // "journal: recovered 0 ..." + one reply per job
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reply");
        seen.push(line);
    }
    assert!(seen[0].contains("recovered 0"), "{seen:?}");
    assert!(
        seen[1].contains("\"id\":\"a\"") && !seen[1].contains("\"replayed\":true"),
        "{seen:?}"
    );
    child.kill().expect("SIGKILL serve");
    let _ = child.wait();

    // Cross-crate pin: the on-disk journal key is exactly the wire
    // fingerprint (`proto::Request::fingerprint` via `job_key`). If the
    // derivations ever drift, recovery would silently stop replaying.
    let jobs = slo_service::parse_job_line(&dir, "a.sir scheme=ispbo").expect("parse job line");
    let key = slo_service::job_key("a.sir scheme=ispbo", &jobs[0]);
    let journal_text = std::fs::read_to_string(&journal).expect("read journal");
    assert!(
        journal_text.contains(&format!("{key:016x}")),
        "journal key must be the proto fingerprint {key:016x}:\n{journal_text}"
    );

    // Session 2: same two lines plus two new ones. The first two must
    // be answered from the journal, the new ones computed.
    let mut child = slo()
        .args(["serve", "--journal"])
        .arg(&journal)
        .current_dir(&dir)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("respawn slo serve");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(
            b"a.sir scheme=ispbo\nb.sir scheme=ispbo\n\
              c.sir scheme=ispbo\nd.sir scheme=ispbo\nquit\n",
        )
        .expect("write jobs");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("journal: recovered 2 completed job(s)"),
        "replay announced:\n{text}"
    );
    let replayed = text
        .lines()
        .filter(|l| l.contains("\"replayed\":true"))
        .count();
    assert_eq!(replayed, 2, "a and b answered from the journal:\n{text}");
    assert!(
        text.contains("served 2 job(s) (2 replayed from journal)"),
        "only c and d were computed:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An edited source invalidates its journal entry: the job key covers
/// the program text, so a recovered journal never serves stale results.
#[test]
fn serve_journal_does_not_replay_stale_sources() {
    use std::io::Write as _;
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("slo-e2e-journal-stale-{pid}"));
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(
        dir.join("x.sir"),
        "func main() -> i64 {\nbb0:\n  ret 1\n}\n",
    )
    .expect("write sir");
    let journal = dir.join("serve.jsonl");
    let _ = std::fs::remove_file(&journal);

    let serve_once = |dir: &std::path::Path, journal: &std::path::Path| {
        let mut child = slo()
            .args(["serve", "--journal"])
            .arg(journal)
            .current_dir(dir)
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn slo serve");
        child
            .stdin
            .as_mut()
            .expect("stdin")
            .write_all(b"x.sir scheme=ispbo\nquit\n")
            .expect("write jobs");
        let out = child.wait_with_output().expect("wait");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    let first = serve_once(&dir, &journal);
    assert!(first.contains("served 1 job(s)"), "{first}");

    // Edit the program: the restarted session must recompute.
    std::fs::write(
        dir.join("x.sir"),
        "func main() -> i64 {\nbb0:\n  ret 2\n}\n",
    )
    .expect("rewrite sir");
    let second = serve_once(&dir, &journal);
    assert!(
        !second.contains("\"replayed\":true"),
        "edited source must not replay:\n{second}"
    );
    assert!(second.contains("served 1 job(s)"), "{second}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawn `slo serve --listen 127.0.0.1:0 <extra>` in `dir`, keep its
/// stdin open (stdin is the drain control channel), and return the
/// child, a reader over its remaining stdout, and the bound address
/// announced by the `listening on ...` line.
fn spawn_listen(
    dir: &std::path::Path,
    extra: &[&str],
) -> (
    std::process::Child,
    std::io::BufReader<std::process::ChildStdout>,
    String,
) {
    use std::io::BufRead as _;
    let mut child = slo()
        .args(["serve", "--listen", "127.0.0.1:0"])
        .args(extra)
        .current_dir(dir)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn slo serve --listen");
    let mut reader = std::io::BufReader::new(child.stdout.take().expect("stdout"));
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read banner");
        assert!(n > 0, "serve exited before announcing its address");
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.to_string();
        }
    };
    // The banner must name the real ephemeral socket, not echo the
    // requested ":0" — clients paste this address verbatim.
    let parsed: std::net::SocketAddr = addr
        .parse()
        .unwrap_or_else(|e| panic!("announced address {addr:?} must be a socket address: {e}"));
    assert_ne!(parsed.port(), 0, "announced port must be the bound one");
    (child, reader, addr)
}

/// Connect to `addr`, send `lines` (newline-terminated), half-close
/// the write side, and collect one reply line per request.
fn wire_roundtrip(addr: &str, lines: &[&str]) -> Vec<String> {
    use std::io::{BufRead as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(120)))
        .expect("read timeout");
    for l in lines {
        // One segment per frame (a split line + newline would eat a
        // Nagle/delayed-ACK stall per request).
        stream
            .write_all(format!("{l}\n").as_bytes())
            .expect("write frame");
    }
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut replies = Vec::new();
    for line in std::io::BufReader::new(stream).lines() {
        replies.push(line.expect("read reply"));
    }
    replies
}

/// The TCP front end speaks the same v1 protocol: handshake, job
/// replies, journal write-ahead — and a SIGKILLed session replays its
/// completed jobs to reconnecting clients after restart.
#[test]
fn tcp_serve_replays_journal_after_sigkill() {
    use std::io::{BufRead as _, Write as _};
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("slo-e2e-tcp-journal-{pid}"));
    std::fs::create_dir_all(&dir).expect("mkdir");
    const SIR: &str = "func main() -> i64 {\nbb0:\n  ret 7\n}\n";
    for name in ["a.sir", "b.sir", "c.sir"] {
        std::fs::write(dir.join(name), SIR).expect("write sir");
    }
    let journal = dir.join("serve.jsonl");
    let _ = std::fs::remove_file(&journal);

    // Session 1: handshake + two jobs over TCP, then SIGKILL — no
    // drain, no flush beyond the per-record WAL flush.
    let (mut child, _reader, addr) = spawn_listen(&dir, &["--journal", "serve.jsonl"]);
    let replies = wire_roundtrip(
        &addr,
        &["hello v=1", "a.sir scheme=ispbo", "b.sir scheme=ispbo"],
    );
    assert_eq!(replies.len(), 3, "{replies:?}");
    assert!(
        replies[0].contains("\"id\":\"hello\"") && replies[0].contains("\"status\":\"ok\""),
        "handshake answered: {replies:?}"
    );
    for r in &replies[1..] {
        assert!(r.contains("\"status\":\"optimized\""), "{replies:?}");
        assert!(!r.contains("\"replayed\":true"), "{replies:?}");
    }
    child.kill().expect("SIGKILL serve");
    let _ = child.wait();

    // Session 2: the journaled jobs replay over a fresh connection;
    // only the new job is computed.
    let (mut child, mut reader, addr) = spawn_listen(&dir, &["--journal", "serve.jsonl"]);
    let replies = wire_roundtrip(
        &addr,
        &[
            "a.sir scheme=ispbo",
            "b.sir scheme=ispbo",
            "c.sir scheme=ispbo",
        ],
    );
    assert_eq!(replies.len(), 3, "{replies:?}");
    assert!(
        replies[0].contains("\"replayed\":true") && replies[1].contains("\"replayed\":true"),
        "journaled jobs answered without recomputation: {replies:?}"
    );
    assert!(
        replies[2].contains("\"status\":\"optimized\"")
            && !replies[2].contains("\"replayed\":true"),
        "the new job is computed: {replies:?}"
    );

    // Graceful drain via the stdin control channel.
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"quit\n")
        .expect("write quit");
    let mut rest = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read tail") == 0 {
            break;
        }
        rest.push_str(&line);
    }
    let status = child.wait().expect("wait");
    assert!(status.success(), "drain exits cleanly:\n{rest}");
    assert!(
        rest.contains("served 1 job(s)"),
        "only c was computed this session:\n{rest}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Overload: with a one-permit pool and a zero-length queue, a second
/// client's request is shed with a concrete `retry_after_ms` hint
/// instead of queueing unboundedly — and honouring the hint succeeds.
/// Every request gets exactly one reply; nothing is silently dropped.
#[test]
fn tcp_serve_sheds_under_overload_with_retry_after() {
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("slo-e2e-tcp-overload-{pid}"));
    std::fs::create_dir_all(&dir).expect("mkdir");
    // ~3M-iteration counted loop: holds the single admission permit
    // for seconds in a debug-build VM while staying under the default
    // step budget.
    std::fs::write(
        dir.join("slow.sir"),
        "record acc { v: i64, pad: i64 }\n\n\
         func main() -> i64 {\n\
         bb0:\n  r0 = alloc acc, 1\n  r1 = 0\n  r2 = 0\n  jump bb1\n\
         bb1:\n  r3 = cmp.lt r1, 3000000\n  br r3, bb2, bb3\n\
         bb2:\n  r4 = fieldaddr r0, acc.v\n  store r1, r4 : i64\n  r5 = load r4 : i64\n\
         \x20 r2 = add r2, r5\n  r1 = add r1, 1\n  jump bb1\n\
         bb3:\n  ret r2\n}\n",
    )
    .expect("write slow.sir");
    std::fs::write(
        dir.join("fast.sir"),
        "func main() -> i64 {\nbb0:\n  ret 7\n}\n",
    )
    .expect("write fast.sir");

    let (mut child, mut reader, addr) = spawn_listen(
        &dir,
        &[
            "--net-inflight",
            "1",
            "--net-per-client",
            "1",
            "--net-queue",
            "0",
            "--net-retry-after-ms",
            "20",
        ],
    );

    // Client A occupies the only permit with the slow job.
    let slow = std::thread::spawn({
        let addr = addr.clone();
        move || wire_roundtrip(&addr, &["slow.sir scheme=ispbo"])
    });
    // Give A's frame time to be admitted before B starts asking.
    std::thread::sleep(std::time::Duration::from_millis(300));

    // Client B: retry on shed, honouring the server's hint.
    let mut sheds = 0u32;
    let mut attempts = 0u32;
    let fast_reply = loop {
        attempts += 1;
        assert!(attempts <= 500, "server never freed the permit");
        let replies = wire_roundtrip(&addr, &["fast.sir scheme=ispbo"]);
        assert_eq!(
            replies.len(),
            1,
            "exactly one reply per request: {replies:?}"
        );
        let r = slo_service::Response::parse(&replies[0]).expect("reply parses");
        match r.status.as_str() {
            "shed" => {
                let hint = r.retry_after_ms.expect("shed replies carry retry_after_ms");
                assert!(hint > 0, "retry hint must be positive");
                sheds += 1;
                std::thread::sleep(std::time::Duration::from_millis(hint.min(200)));
            }
            "optimized" => break replies[0].clone(),
            other => panic!("unexpected status `{other}`: {replies:?}"),
        }
    };
    assert!(sheds > 0, "the saturated server must shed at least once");
    assert!(fast_reply.contains("\"id\":\"fast\""), "{fast_reply}");

    // Client A's slow job was never dropped: one optimized reply.
    let slow_replies = slow.join().expect("join slow client");
    assert_eq!(slow_replies.len(), 1, "{slow_replies:?}");
    assert!(
        slow_replies[0].contains("\"status\":\"optimized\""),
        "{slow_replies:?}"
    );

    // Drain and check the shed counter is visible to operators.
    use std::io::{BufRead as _, Write as _};
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"quit\n")
        .expect("write quit");
    let mut rest = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read tail") == 0 {
            break;
        }
        rest.push_str(&line);
    }
    assert!(child.wait().expect("wait").success(), "{rest}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// One protocol, three front ends: the same job line answered by
/// `slo batch --wire`, stdin serve, and the TCP listener parses to the
/// identical `Response` value.
#[test]
fn three_front_ends_speak_one_protocol() {
    use std::io::Write as _;
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("slo-e2e-conformance-{pid}"));
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(
        dir.join("x.sir"),
        "func main() -> i64 {\nbb0:\n  ret 3\n}\n",
    )
    .expect("write sir");
    const LINE: &str = "x.sir scheme=ispbo";
    std::fs::write(dir.join("jobs.txt"), format!("{LINE}\n")).expect("write manifest");

    let parse_first_wire_line = |text: &str| -> slo_service::Response {
        let line = text
            .lines()
            .find(|l| l.starts_with('{') && l.contains("\"v\":"))
            .unwrap_or_else(|| panic!("no wire reply in:\n{text}"));
        slo_service::Response::parse(line).expect("wire reply parses")
    };

    // Front end 1: batch --wire.
    let out = slo()
        .args(["batch", "jobs.txt", "--wire"])
        .current_dir(&dir)
        .output()
        .expect("spawn slo batch");
    assert!(out.status.success());
    let from_batch = parse_first_wire_line(&String::from_utf8_lossy(&out.stdout));

    // Front end 2: stdin serve.
    let mut child = slo()
        .args(["serve"])
        .current_dir(&dir)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn slo serve");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(format!("{LINE}\nquit\n").as_bytes())
        .expect("write job");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let from_stdin = parse_first_wire_line(&String::from_utf8_lossy(&out.stdout));

    // Front end 3: TCP.
    let (mut child, _reader, addr) = spawn_listen(&dir, &[]);
    let replies = wire_roundtrip(&addr, &[LINE]);
    assert_eq!(replies.len(), 1, "{replies:?}");
    let from_tcp = slo_service::Response::parse(&replies[0]).expect("tcp reply parses");
    child.kill().expect("kill serve");
    let _ = child.wait();

    assert_eq!(from_batch, from_stdin, "batch and stdin serve agree");
    assert_eq!(from_stdin, from_tcp, "stdin serve and TCP agree");
    assert_eq!(from_batch.v, 1, "protocol version is pinned");
    assert_eq!(from_batch.id, "x");
    assert_eq!(from_batch.status, "optimized");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The README quickstart, kept honest: `slo serve --listen`, then the
/// documented handshake, job line and `metrics` probe over a raw
/// socket (what the README does with `nc`).
#[test]
fn readme_listen_quickstart_works_as_documented() {
    let dir = sample().parent().expect("dir").to_path_buf();
    let (mut child, _reader, addr) = spawn_listen(&dir, &[]);
    let replies = wire_roundtrip(&addr, &["hello v=1", "hotcold.sir scheme=ispbo", "metrics"]);
    assert!(replies.len() >= 3, "{replies:?}");
    assert!(
        replies[0].contains("\"id\":\"hello\"") && replies[0].contains("\"status\":\"ok\""),
        "{replies:?}"
    );
    assert!(
        replies[1].contains("\"id\":\"hotcold\"")
            && replies[1].contains("\"status\":\"optimized\""),
        "{replies:?}"
    );
    assert!(
        replies[2].contains("\"jobs\": 1"),
        "metrics answers inline: {replies:?}"
    );
    child.kill().expect("kill serve");
    let _ = child.wait();
}

/// A `batch --store` run in one process leaves a segment store that a
/// fresh process warm-starts from: every analysis is served from disk
/// (100% store hit rate) and the reported outcomes are identical.
#[test]
fn batch_store_warm_starts_across_processes() {
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("slo-e2e-batch-store-{pid}"));
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(
        dir.join("a.sir"),
        "func main() -> i64 {\nbb0:\n  ret 7\n}\n",
    )
    .expect("write sir");
    std::fs::write(
        dir.join("b.sir"),
        "func main() -> i64 {\nbb0:\n  ret 9\n}\n",
    )
    .expect("write sir");
    std::fs::write(
        dir.join("jobs.txt"),
        "a.sir scheme=ispbo\nb.sir scheme=spbo\n",
    )
    .expect("write manifest");
    let store = dir.join("store");

    let run = || {
        let out = slo()
            .args(["batch"])
            .arg(dir.join("jobs.txt"))
            .arg("--store")
            .arg(&store)
            .args(["--json"])
            .output()
            .expect("spawn slo batch --store");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    let cold = run();
    assert!(
        cold.contains("store: 0/2 hit (0%)"),
        "first process must miss and populate the store:\n{cold}"
    );
    assert!(
        cold.contains("\"store_misses\": 2"),
        "--json metrics must carry the store counters:\n{cold}"
    );

    let warm = run();
    assert!(
        warm.contains("store: 2/2 hit (100%)"),
        "second process must be served entirely from disk:\n{warm}"
    );
    assert!(
        warm.contains("\"store_hits\": 2") && warm.contains("\"store_corrupt_drops\": 0"),
        "{warm}"
    );

    // Same per-job verdicts either way; only the cache provenance
    // marker may differ between a computed and a warm-started run.
    let verdicts = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| l.starts_with("a.sir") || l.starts_with("b.sir"))
            .map(|l| l.replace(" [cached]", ""))
            .collect()
    };
    assert_eq!(
        verdicts(&cold),
        verdicts(&warm),
        "\ncold:\n{cold}\nwarm:\n{warm}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGKILL a `serve --store` session mid-stream: the sealed/active
/// segments survive, the restarted session announces the on-disk
/// record count, and re-submitted jobs come back `"cached":true`
/// without recomputation.
#[test]
fn serve_store_survives_sigkill_and_warm_starts() {
    use std::io::{BufRead as _, BufReader, Write as _};
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("slo-e2e-serve-store-{pid}"));
    std::fs::create_dir_all(&dir).expect("mkdir");
    const SIR: &str = "func main() -> i64 {\nbb0:\n  ret 7\n}\n";
    for name in ["a.sir", "b.sir"] {
        std::fs::write(dir.join(name), SIR).expect("write sir");
    }
    let store = dir.join("store");

    // Session 1: two jobs land in the store, then SIGKILL — no EOF,
    // no graceful shutdown, no journal.
    let mut child = slo()
        .args(["serve", "--store", "store"])
        .current_dir(&dir)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn slo serve --store");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"a.sir scheme=ispbo\nb.sir scheme=spbo\n")
        .expect("write jobs");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout"));
    let mut seen = Vec::new();
    for _ in 0..3 {
        // "store: 0 analysis record(s) on disk" + one reply per job
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reply");
        seen.push(line);
    }
    assert!(
        seen[0].contains("store: 0 analysis record(s) on disk"),
        "{seen:?}"
    );
    assert!(
        seen[1].contains("\"status\":\"optimized\"") && seen[1].contains("\"cached\":false"),
        "{seen:?}"
    );
    child.kill().expect("SIGKILL serve");
    let _ = child.wait();
    assert!(store.is_dir(), "the store directory must survive the kill");

    // Session 2: the banner counts the survivors and the same jobs are
    // answered from disk.
    let mut child = slo()
        .args(["serve", "--store", "store"])
        .current_dir(&dir)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("respawn slo serve --store");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"a.sir scheme=ispbo\nb.sir scheme=spbo\nquit\n")
        .expect("write jobs");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("store: 2 analysis record(s) on disk"),
        "restart must see both records:\n{text}"
    );
    let cached = text
        .lines()
        .filter(|l| l.contains("\"status\":\"optimized\"") && l.contains("\"cached\":true"))
        .count();
    assert_eq!(
        cached, 2,
        "both jobs must warm-start from the store:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
