//! End-to-end tests of the installed `slo` binary (real process spawn,
//! real files) against the shipped sample program.

use std::path::PathBuf;
use std::process::Command;

fn slo() -> Command {
    Command::new(env!("CARGO_BIN_EXE_slo"))
}

fn sample() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // repo root
    p.push("examples/ir/interleaved.sir");
    assert!(p.exists(), "sample missing: {}", p.display());
    p
}

#[test]
fn analyze_sample_file() {
    let out = slo()
        .args(["analyze"])
        .arg(sample())
        .output()
        .expect("spawn slo");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 record types, 1 legal"));
    assert!(text.contains("item"));
}

#[test]
fn optimize_writes_output_file() {
    let dir = std::env::temp_dir();
    let out_path = dir.join(format!("slo-e2e-{}.sir", std::process::id()));
    let out = slo()
        .args(["optimize"])
        .arg(sample())
        .arg("-o")
        .arg(&out_path)
        .output()
        .expect("spawn slo");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&out_path).expect("output written");
    assert!(written.contains("record item"));
    assert!(written.contains("item_cold"), "split must have happened");
    // the emitted IR is itself runnable
    let run = slo()
        .args(["run"])
        .arg(&out_path)
        .output()
        .expect("spawn slo");
    assert!(run.status.success());
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn bad_input_exits_nonzero() {
    let out = slo()
        .args(["run", "/nonexistent.sir"])
        .output()
        .expect("spawn slo");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn help_exits_zero() {
    let out = slo().args(["help"]).output().expect("spawn slo");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: slo"));
}
