//! `slo` — the standalone command-line tool the paper's §5 envisions:
//! the analysis/advisory phase repackaged outside the compiler, plus the
//! optimizer and the simulated machine, driven over textual IR files.

use std::process::ExitCode;

mod cli;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("slo: {e}");
            ExitCode::FAILURE
        }
    }
}
