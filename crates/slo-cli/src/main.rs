//! `slo` — the standalone command-line tool the paper's §5 envisions:
//! the analysis/advisory phase repackaged outside the compiler, plus the
//! optimizer and the simulated machine, driven over textual IR files.
//!
//! Error-domain exit codes (scripts can branch on *why* a run failed):
//! `2` usage, `3` parse, `4` legality, `5` transform, `6` VM fault,
//! `7` budget exhausted, `8` I/O.

use slo::SloError;
use std::process::ExitCode;

mod cli;

/// Map each error domain to a distinct exit code (0 = success).
fn exit_code(e: &SloError) -> u8 {
    match e {
        SloError::Usage(_) => 2,
        SloError::Parse(_) => 3,
        SloError::Legality(_) => 4,
        SloError::Transform(_) => 5,
        SloError::Vm(_) => 6,
        SloError::Budget(_) => 7,
        SloError::Io(_) => 8,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("slo: {e}");
            ExitCode::from(exit_code(&e))
        }
    }
}
