//! Argument parsing and subcommand implementations.
//!
//! ```text
//! slo run <file.sir>                         execute on the simulated machine
//! slo analyze <file.sir> [--relax]           legality verdicts per type
//! slo advise <file.sir> [--scheme S] [--profile]
//!                                            the §3 advisory report (+ advice)
//! slo optimize <file.sir> [-o out.sir] [--scheme S] [--profile]
//!                                            run the pipeline, print/emit IR
//! slo profile <file.sir> [-o out.prof]       PBO collection: run instrumented,
//!                                            write the feedback file
//! slo vcg <file.sir> <record>                VCG control file for one type
//! slo batch <manifest> [--workers N]         run a job manifest through the
//!                                            batch service (caching, budgets)
//! slo serve [--workers N]                    line-oriented job server on stdin
//! ```
//!
//! Schemes: `spbo`, `ispbo` (default), `ispbo.no`, `ispbo.w`, `pbo`
//! (`pbo` requires `--profile <file.prof>` or `--profile` to collect one
//! on the fly).

use slo::analysis::{analyze_program, LegalityConfig, WeightScheme};
use slo::obs::Recorder;
use slo::pipeline::{compile_with, evaluate, PipelineConfig};
use slo::vm::{Feedback, VmOptions};
use slo::SloError;
use slo_ir::parser::parse;
use slo_ir::Program;
use slo_service::{
    legacy_line, Clock, FaultPlan, Journal, NetConfig, NetServer, Reply, RetryPolicy, Service,
    ServiceConfig, Session,
};
use std::fmt::Write as _;
use std::sync::Mutex;

type Result<T> = std::result::Result<T, SloError>;

const USAGE: &str = "\
usage: slo <command> [options]

commands:
  run <file.sir>                         execute on the simulated machine
  analyze <file.sir> [--relax]           legality verdicts per record type
  advise <file.sir> [--scheme S] [--profile [file]]
                                         annotated type layouts + advice
  optimize <file.sir> [-o out.sir] [--scheme S] [--profile [file]] [--measure]
           [--trace-json t.json]         run the FE/IPA/BE pipeline
                                         (alias: compile)
  profile <file.sir> [-o out.prof]       collect an edge/d-cache profile
  vcg <file.sir> <record>                VCG affinity graph for one type
  print <file.sir>                       parse, verify and pretty-print IR
  batch <manifest> [--workers N] [--cache N] [--json] [--strict] [--wire]
        [--chaos-seed N] [--store DIR] [--trace-json t.json]
                                         run a job manifest through the
                                         batch service (--wire answers in
                                         the v1 JSON wire protocol;
                                         --store persists analyses in a
                                         crash-safe segment store)
  serve [--workers N] [--cache N] [--journal FILE] [--store DIR] [--chaos-seed N]
        [--legacy-lines] [--listen ADDR] [--net-inflight N] [--net-queue N]
        [--net-clients N] [--net-per-client N] [--net-read-timeout-ms N]
        [--net-retry-after-ms N]
                                         serve the v1 wire protocol: job
                                         lines in, one JSON reply per job
                                         (`metrics` dumps JSON, `metrics
                                         prom` the Prometheus exposition);
                                         --journal appends outcomes to a
                                         JSONL WAL and replays it on
                                         restart; --store layers a
                                         persistent checksummed analysis
                                         store under the LRU, so restarts
                                         warm-start from disk; --listen
                                         serves TCP with
                                         bounded admission + load shedding
                                         instead of stdin; --legacy-lines
                                         keeps the pre-protocol replies
  trace-check <trace.json>               validate a Chrome trace against
                                         the golden schema
  help                                   this text

schemes: spbo | ispbo (default) | ispbo.no | ispbo.w | pbo
";

/// Parse arguments and run the selected subcommand, returning its stdout.
pub fn dispatch(args: &[String]) -> Result<String> {
    let Some(cmd) = args.first() else {
        return Err(SloError::Usage(format!("missing command\n{USAGE}")));
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "run" => cmd_run(rest),
        "analyze" => cmd_analyze(rest),
        "advise" => cmd_advise(rest),
        "optimize" | "compile" => cmd_optimize(rest),
        "profile" => cmd_profile(rest),
        "vcg" => cmd_vcg(rest),
        "print" => cmd_print(rest),
        "batch" => cmd_batch(rest),
        "serve" => cmd_serve(rest),
        "trace-check" => cmd_trace_check(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(SloError::Usage(format!(
            "unknown command `{other}`\n{USAGE}"
        ))),
    }
}

/// Minimal flag scanner: returns (positional, flags-with-optional-values).
struct Opts {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut positional = Vec::new();
    let mut flags: Vec<(String, Option<String>)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            let value = args.get(i + 1).filter(|v| !v.starts_with('-')).cloned();
            if value.is_some() {
                i += 1;
            }
            flags.push((name.to_string(), value));
        } else if a == "-o" {
            let value = args.get(i + 1).cloned();
            if value.is_some() {
                i += 1;
            }
            flags.push(("o".to_string(), value));
        } else {
            positional.push(a.clone());
        }
        i += 1;
    }
    Opts { positional, flags }
}

impl Opts {
    fn flag(&self, name: &str) -> Option<&(String, Option<String>)> {
        self.flags.iter().find(|(n, _)| n == name)
    }

    fn has(&self, name: &str) -> bool {
        self.flag(name).is_some()
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flag(name).and_then(|(_, v)| v.as_deref())
    }
}

fn load_program(path: &str) -> Result<Program> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| SloError::Io(format!("cannot read `{path}`: {e}")))?;
    let prog = parse(&src).map_err(|e| SloError::Parse(format!("{path}: {e}")))?;
    let errs = slo_ir::verify::verify(&prog);
    if !errs.is_empty() {
        let msgs: Vec<String> = errs.iter().map(|e| format!("  {e}")).collect();
        return Err(SloError::Parse(format!(
            "{path}: invalid IR:\n{}",
            msgs.join("\n")
        )));
    }
    Ok(prog)
}

/// Resolve the scheme flags into a `WeightScheme` plus (possibly) an
/// owned feedback the scheme borrows from. The feedback must outlive the
/// scheme, hence the slightly awkward split.
fn collect_feedback(prog: &Program, opts: &Opts) -> Result<Option<Feedback>> {
    collect_feedback_with(prog, opts, &Recorder::disabled())
}

fn collect_feedback_with(prog: &Program, opts: &Opts, rec: &Recorder) -> Result<Option<Feedback>> {
    if !opts.has("profile") {
        // `--scheme pbo` without --profile is rejected later by
        // `scheme_for`; profiles are only collected/loaded on request
        return Ok(None);
    }
    if let Some(path) = opts.value("profile") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SloError::Io(format!("cannot read profile `{path}`: {e}")))?;
        let fb = Feedback::from_text(&text)
            .map_err(|e| SloError::Parse(format!("profile `{path}`: {e}")))?;
        return Ok(Some(fb));
    }
    // collect on the fly
    let fb = slo::collect_profile_with(prog, rec)?;
    Ok(Some(fb))
}

/// The recorder for a command honouring `--trace-json <path>`: enabled
/// exactly when a trace is requested, so the untraced path keeps the
/// no-op recorder.
fn trace_recorder(opts: &Opts) -> Result<(Recorder, Option<String>)> {
    match opts.flag("trace-json") {
        None => Ok((Recorder::disabled(), None)),
        Some((_, None)) => Err(SloError::Usage("--trace-json needs an output path".into())),
        Some((_, Some(path))) => Ok((Recorder::enabled(), Some(path.clone()))),
    }
}

/// Write the recorded trace as Chrome `trace_event` JSON. Intentionally
/// silent on stdout: command output stays bit-identical with tracing on
/// or off.
fn write_trace(rec: &Recorder, path: Option<&str>) -> Result<()> {
    if let Some(path) = path {
        std::fs::write(path, rec.to_chrome_json())
            .map_err(|e| SloError::Io(format!("cannot write trace `{path}`: {e}")))?;
    }
    Ok(())
}

fn scheme_for<'a>(opts: &Opts, feedback: Option<&'a Feedback>) -> Result<WeightScheme<'a>> {
    let name = opts
        .value("scheme")
        .unwrap_or(if feedback.is_some() { "pbo" } else { "ispbo" });
    Ok(match (name.to_ascii_lowercase().as_str(), feedback) {
        ("pbo", Some(fb)) => WeightScheme::Pbo(fb),
        ("pbo", None) => {
            return Err(SloError::Usage(
                "scheme `pbo` needs --profile (a file, or bare to collect one)".into(),
            ))
        }
        ("spbo", _) => WeightScheme::Spbo,
        ("ispbo", _) => WeightScheme::Ispbo,
        ("ispbo.no", _) => WeightScheme::IspboNo,
        ("ispbo.w", _) => WeightScheme::IspboW,
        (other, _) => return Err(SloError::Usage(format!("unknown scheme `{other}`"))),
    })
}

fn cmd_run(args: &[String]) -> Result<String> {
    let opts = parse_opts(args);
    let [path] = &opts.positional[..] else {
        return Err(SloError::Usage(
            "run: expected exactly one input file".into(),
        ));
    };
    let prog = load_program(path)?;
    let out = slo::vm::run(&prog, &VmOptions::default())?;
    let mut s = String::new();
    let _ = writeln!(s, "exit      : {}", out.exit);
    let _ = writeln!(s, "instrs    : {}", out.stats.instructions);
    let _ = writeln!(s, "cycles    : {}", out.stats.cycles);
    let _ = writeln!(
        s,
        "loads     : {} ({} stores)",
        out.stats.loads, out.stats.stores
    );
    for (i, lvl) in out.stats.cache.levels.iter().enumerate() {
        let _ = writeln!(
            s,
            "L{} hits   : {} / {} misses",
            i + 1,
            lvl.hits,
            lvl.misses
        );
    }
    let _ = writeln!(s, "memory    : {}", out.stats.cache.memory_accesses);
    let _ = writeln!(s, "heap peak : {} bytes", out.stats.peak_live_bytes);
    Ok(s)
}

fn cmd_analyze(args: &[String]) -> Result<String> {
    let opts = parse_opts(args);
    let [path] = &opts.positional[..] else {
        return Err(SloError::Usage(
            "analyze: expected exactly one input file".into(),
        ));
    };
    let prog = load_program(path)?;
    let cfg = LegalityConfig {
        relax_cast_addr: opts.has("relax"),
        ..Default::default()
    };
    let res = analyze_program(&prog, &cfg);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{} record types, {} legal{}",
        res.num_types(),
        res.num_legal(),
        if opts.has("relax") { " (relaxed)" } else { "" }
    );
    for rid in prog.types.record_ids() {
        let v = res.verdict(rid);
        let rec = prog.types.record(rid);
        let status = if v.legal() {
            "*OK*".to_string()
        } else {
            v.invalid
                .iter()
                .map(|t| t.abbrev())
                .collect::<Vec<_>>()
                .join(" ")
        };
        let _ = writeln!(
            s,
            "  {:<24} {:>3} fields {:>5} bytes  {}",
            rec.name,
            rec.fields.len(),
            prog.types.layout_of(rid).size,
            status
        );
    }
    Ok(s)
}

fn cmd_advise(args: &[String]) -> Result<String> {
    let opts = parse_opts(args);
    let [path] = &opts.positional[..] else {
        return Err(SloError::Usage(
            "advise: expected exactly one input file".into(),
        ));
    };
    let prog = load_program(path)?;
    let feedback = collect_feedback(&prog, &opts)?;
    let scheme = scheme_for(&opts, feedback.as_ref())?;

    let ipa = analyze_program(&prog, &LegalityConfig::default());
    let graphs = slo::analysis::affinity_graphs(&prog, &scheme);
    let freqs = slo::analysis::block_frequencies(&prog, &scheme);
    let counts = slo::analysis::affinity::build_field_counts(&prog, &freqs);
    let dcache = feedback
        .as_ref()
        .map(|fb| slo::analysis::attribute_samples(&prog, fb));
    let strides = feedback
        .as_ref()
        .map(|fb| slo::analysis::attribute_strides(&prog, fb));

    let input = slo::advisor::AdvisorInput {
        prog: &prog,
        ipa: &ipa,
        graphs: &graphs,
        counts: &counts,
        dcache: dcache.as_ref(),
        strides: strides.as_ref(),
        plan: None,
    };
    let mut s = slo::advisor::render_report(&input);
    for rid in prog.types.record_ids() {
        let suggestion = slo::advisor::suggest_layout(&prog, rid, &graphs[&rid], 10.0);
        if suggestion.is_nontrivial() {
            s.push_str(&slo::advisor::render_suggestion(&prog, &suggestion));
        }
    }
    for rid in prog.types.record_ids() {
        let advice = slo::advisor::classify(
            &prog,
            rid,
            &graphs[&rid],
            &counts,
            dcache.as_ref(),
            &slo::advisor::ScenarioConfig::default(),
        );
        if !advice.is_empty() {
            let _ = writeln!(s, "advice for {}:", prog.types.record(rid).name);
            for a in advice {
                let _ = writeln!(s, "  * {a}");
            }
        }
    }
    Ok(s)
}

fn cmd_optimize(args: &[String]) -> Result<String> {
    let opts = parse_opts(args);
    let [path] = &opts.positional[..] else {
        return Err(SloError::Usage(
            "optimize: expected exactly one input file".into(),
        ));
    };
    let (rec, trace_path) = trace_recorder(&opts)?;
    let prog = {
        let _s = rec.span("pipeline", "parse");
        load_program(path)?
    };
    let feedback = collect_feedback_with(&prog, &opts, &rec)?;
    let scheme = scheme_for(&opts, feedback.as_ref())?;
    let res = compile_with(&prog, &scheme, &PipelineConfig::default(), &rec)?;

    let mut s = String::new();
    let _ = writeln!(
        s,
        "scheme {} -> {} type(s) transformed",
        scheme.name(),
        res.plan.num_transformed()
    );
    for rid in prog.types.record_ids() {
        let t = res.plan.of(rid);
        if t.is_some() {
            let _ = writeln!(s, "  {:<24} {:?}", prog.types.record(rid).name, t);
        }
    }

    let text = slo_ir::printer::print_program(&res.program);
    if let Some(out) = opts.value("o") {
        std::fs::write(out, &text)
            .map_err(|e| SloError::Io(format!("cannot write `{out}`: {e}")))?;
        let _ = writeln!(s, "wrote {out}");
    } else if !opts.has("measure") {
        s.push_str(&text);
    }

    if opts.has("measure") {
        let vm_opts = VmOptions::builder().trace(rec.clone()).build();
        let eval = evaluate(&prog, &res.program, &vm_opts)?;
        let _ = writeln!(
            s,
            "cycles {} -> {} ({:+.1}%)",
            eval.baseline_cycles,
            eval.optimized_cycles,
            eval.speedup_percent()
        );
    }
    write_trace(&rec, trace_path.as_deref())?;
    Ok(s)
}

fn cmd_trace_check(args: &[String]) -> Result<String> {
    let opts = parse_opts(args);
    let [path] = &opts.positional[..] else {
        return Err(SloError::Usage(
            "trace-check: expected exactly one trace file".into(),
        ));
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| SloError::Io(format!("cannot read `{path}`: {e}")))?;
    let summary = slo::obs::conform::check_chrome_trace(&text)
        .map_err(|e| SloError::Parse(format!("{path}: {e}")))?;
    Ok(format!(
        "{path}: OK — {} event(s), {} span(s), {} dropped; names: {}\n",
        summary.events,
        summary.spans,
        summary.dropped,
        summary.names.join(", ")
    ))
}

fn cmd_profile(args: &[String]) -> Result<String> {
    let opts = parse_opts(args);
    let [path] = &opts.positional[..] else {
        return Err(SloError::Usage(
            "profile: expected exactly one input file".into(),
        ));
    };
    let prog = load_program(path)?;
    let fb = slo::collect_profile(&prog)?;
    let text = fb.to_text();
    if let Some(out) = opts.value("o") {
        std::fs::write(out, &text)
            .map_err(|e| SloError::Io(format!("cannot write `{out}`: {e}")))?;
        Ok(format!(
            "wrote {out} ({} functions, {} edge count total)\n",
            fb.funcs.len(),
            fb.total_edge_count()
        ))
    } else {
        Ok(text)
    }
}

fn cmd_print(args: &[String]) -> Result<String> {
    let opts = parse_opts(args);
    let [path] = &opts.positional[..] else {
        return Err(SloError::Usage(
            "print: expected exactly one input file".into(),
        ));
    };
    let prog = load_program(path)?;
    Ok(slo_ir::printer::print_program(&prog))
}

fn cmd_vcg(args: &[String]) -> Result<String> {
    let opts = parse_opts(args);
    let [path, record] = &opts.positional[..] else {
        return Err(SloError::Usage("vcg: expected <file.sir> <record>".into()));
    };
    let prog = load_program(path)?;
    let rid = prog
        .types
        .record_by_name(record)
        .ok_or_else(|| SloError::Usage(format!("no record type `{record}`")))?;
    let feedback = collect_feedback(&prog, &opts)?;
    let scheme = scheme_for(&opts, feedback.as_ref())?;
    let graphs = slo::analysis::affinity_graphs(&prog, &scheme);
    Ok(slo::advisor::render_vcg(&prog, rid, &graphs[&rid]))
}

/// Numeric `--flag N` with a default when absent.
fn flag_count(opts: &Opts, name: &str, default: usize) -> Result<usize> {
    match opts.value(name) {
        Some(v) => v
            .parse()
            .map_err(|_| SloError::Usage(format!("--{name}: invalid count `{v}`"))),
        None if opts.has(name) => Err(SloError::Usage(format!("--{name} needs a number"))),
        None => Ok(default),
    }
}

/// `--chaos-seed N` → a seeded fault plan with the default per-site
/// rates; absent → disabled (zero-cost) plan.
fn chaos_flag(opts: &Opts) -> Result<FaultPlan> {
    match opts.value("chaos-seed") {
        Some(v) => {
            let seed: u64 = v
                .parse()
                .map_err(|_| SloError::Usage(format!("--chaos-seed: invalid seed `{v}`")))?;
            Ok(FaultPlan::seeded(seed))
        }
        None if opts.has("chaos-seed") => {
            Err(SloError::Usage("--chaos-seed needs a number".into()))
        }
        None => Ok(FaultPlan::disabled()),
    }
}

/// `--store DIR` → the persistent analysis store opened (and created)
/// at DIR, sharing the service's recorder and fault plan; absent →
/// `None`. The plan is shared deliberately: a chaos campaign's store
/// faults count in the same `injected_by_site` totals.
fn store_flag(
    opts: &Opts,
    rec: &Recorder,
    chaos: &FaultPlan,
) -> Result<Option<slo_service::AnalysisStore>> {
    match opts.value("store") {
        Some(p) => {
            let store = slo_service::AnalysisStore::open(
                std::path::Path::new(p),
                rec.clone(),
                chaos.clone(),
            )
            .map_err(|e| SloError::Io(format!("store `{p}`: {e}")))?;
            Ok(Some(store))
        }
        None if opts.has("store") => Err(SloError::Usage("--store needs a directory".into())),
        None => Ok(None),
    }
}

fn cmd_batch(args: &[String]) -> Result<String> {
    let opts = parse_opts(args);
    let [manifest] = &opts.positional[..] else {
        return Err(SloError::Usage(
            "batch: expected exactly one manifest file".into(),
        ));
    };
    let workers = flag_count(&opts, "workers", 0)?;
    let cache = flag_count(&opts, "cache", 256)?;
    let (rec, trace_path) = trace_recorder(&opts)?;
    let jobs = slo_service::load_manifest(std::path::Path::new(manifest))?;
    let chaos = chaos_flag(&opts)?;
    let mut service = Service::with_chaos(
        ServiceConfig::builder()
            .workers(workers)
            .cache_capacity(cache)
            .build(),
        rec.clone(),
        chaos.clone(),
        RetryPolicy::default(),
        Clock::Real,
    );
    if let Some(store) = store_flag(&opts, &rec, &chaos)? {
        service = service.with_store(store);
    }
    let outcomes = service.run_batch(&jobs);
    write_trace(&rec, trace_path.as_deref())?;

    let mut s = String::new();
    for o in &outcomes {
        // `--wire` answers in the same v1 JSON protocol as serve; the
        // default stays the human-readable legacy line.
        if opts.has("wire") {
            let _ = writeln!(s, "{}", slo_service::Response::from_outcome(o).to_json());
        } else {
            let _ = writeln!(s, "{}", legacy_line(o));
        }
    }
    let m = service.metrics();
    let _ = writeln!(
        s,
        "{} job(s): {} optimized, {} advisory, {} failed; cache {}/{} hit ({:.0}%)",
        m.jobs,
        m.optimized,
        m.degraded,
        m.failed,
        m.cache_hits,
        m.cache_hits + m.cache_misses,
        100.0 * m.cache_hit_rate()
    );
    if opts.has("store") {
        let _ = writeln!(
            s,
            "store: {}/{} hit ({:.0}%), {} corrupt dropped, {} byte(s) written",
            m.store_hits,
            m.store_hits + m.store_misses,
            100.0 * m.store_hit_rate(),
            m.store_corrupt_drops,
            m.store_bytes
        );
    }
    if opts.has("json") {
        let _ = writeln!(s, "{}", m.to_json());
    }
    if opts.has("strict") && m.degraded + m.failed > 0 {
        return Err(SloError::Usage(format!(
            "{s}batch --strict: {} degraded and {} failed job(s)",
            m.degraded, m.failed
        )));
    }
    Ok(s)
}

fn cmd_serve(args: &[String]) -> Result<String> {
    let opts = parse_opts(args);
    let workers = flag_count(&opts, "workers", 0)?;
    let cache = flag_count(&opts, "cache", 256)?;
    let legacy = opts.has("legacy-lines");
    let chaos = chaos_flag(&opts)?;
    let mut service = Service::with_chaos(
        ServiceConfig::builder()
            .workers(workers)
            .cache_capacity(cache)
            .build(),
        Recorder::disabled(),
        chaos.clone(),
        RetryPolicy::default(),
        Clock::Real,
    );
    if let Some(store) = store_flag(&opts, &Recorder::disabled(), &chaos)? {
        println!("store: {} analysis record(s) on disk", store.len());
        service = service.with_store(store);
    }
    let journal: Option<Mutex<Journal>> = match opts.value("journal") {
        Some(p) => {
            let j = Journal::open(std::path::Path::new(p))
                .map_err(|e| SloError::Io(format!("journal `{p}`: {e}")))?;
            println!("journal: recovered {} completed job(s)", j.recovered());
            Some(Mutex::new(j))
        }
        None if opts.has("journal") => {
            return Err(SloError::Usage("--journal needs a file path".into()))
        }
        None => None,
    };
    let dir = std::env::current_dir().map_err(|e| SloError::Io(format!("current dir: {e}")))?;

    if opts.has("listen") {
        return serve_listen(&opts, &service, journal.as_ref(), dir, legacy);
    }

    // stdin front end: the same protocol Session the TCP ingress uses.
    let session = Session::new(&service, journal.as_ref(), dir, legacy);
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        let n = std::io::BufRead::read_line(&mut stdin.lock(), &mut line)
            .map_err(|e| SloError::Io(format!("stdin: {e}")))?;
        if n == 0 {
            break; // EOF
        }
        match session.handle_line(&line) {
            Reply::Quit => break,
            Reply::Lines(lines) => {
                for l in lines {
                    println!("{l}");
                }
            }
            Reply::Text(text) => print!("{text}"),
        }
    }
    Ok(serve_summary(&service, session.replayed()))
}

/// The end-of-session summary line shared by the stdin and TCP serve
/// front ends.
fn serve_summary(service: &Service, replayed: u64) -> String {
    format!(
        "served {} job(s){}\n",
        service.metrics().jobs,
        if replayed > 0 {
            format!(" ({replayed} replayed from journal)")
        } else {
            String::new()
        }
    )
}

/// `slo serve --listen <addr>`: the TCP ingress. The main thread keeps
/// reading stdin; EOF or `quit` begins the graceful drain.
fn serve_listen(
    opts: &Opts,
    service: &Service,
    journal: Option<&Mutex<Journal>>,
    dir: std::path::PathBuf,
    legacy: bool,
) -> Result<String> {
    let addr = opts
        .value("listen")
        .ok_or_else(|| SloError::Usage("--listen needs an address (e.g. 127.0.0.1:0)".into()))?;
    let cfg = NetConfig {
        addr: addr.to_string(),
        dir,
        max_clients: flag_count(opts, "net-clients", 64)?,
        max_inflight: flag_count(opts, "net-inflight", 4)?,
        queue_capacity: flag_count(opts, "net-queue", 16)?,
        per_client_inflight: flag_count(opts, "net-per-client", 8)?,
        read_timeout_ms: flag_count(opts, "net-read-timeout-ms", 5_000)? as u64,
        retry_after_ms: flag_count(opts, "net-retry-after-ms", 50)? as u64,
        legacy,
    };
    let server = NetServer::bind(cfg).map_err(|e| SloError::Io(format!("bind `{addr}`: {e}")))?;
    let local = server
        .local_addr()
        .map_err(|e| SloError::Io(format!("local addr: {e}")))?;
    // Announce the resolved address (`:0` picks a port) and flush so a
    // supervising process can read it from a pipe immediately.
    println!("listening on {local}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let run_result = std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run(service, journal));
        // Stdin is the control channel: EOF or `quit` drains the server.
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) if matches!(line.trim(), "quit" | "exit") => break,
                Ok(_) => {}
            }
        }
        server.request_shutdown();
        runner.join().expect("server thread")
    });
    run_result.map_err(|e| SloError::Io(format!("serve: {e}")))?;
    Ok(serve_summary(service, 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_sample() -> tempfile_path::TempPath {
        tempfile_path::write_temp(
            "sample.sir",
            r#"
record pair { hot: i64, c1: i64, c2: i64 }
func main() -> i64 {
bb0:
  r0 = alloc pair, 64
  r1 = 0
  jump bb1
bb1:
  r2 = cmp.lt r1, 64
  br r2, bb2, bb3
bb2:
  r3 = indexaddr r0, pair, r1
  r4 = fieldaddr r3, pair.hot
  store r1, r4 : i64
  r5 = load r4 : i64
  r1 = add r1, 1
  jump bb1
bb3:
  r6 = fieldaddr r0, pair.c1
  store 1, r6 : i64
  r7 = load r6 : i64
  r8 = fieldaddr r0, pair.c2
  store 2, r8 : i64
  r9 = load r8 : i64
  r10 = add r7, r9
  ret r10
}
"#,
        )
    }

    /// Tiny temp-file helper (no external crates).
    mod tempfile_path {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        static COUNTER: AtomicU64 = AtomicU64::new(0);

        pub struct TempPath(pub PathBuf);

        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }

        pub fn write_temp(name: &str, contents: &str) -> TempPath {
            let id = COUNTER.fetch_add(1, Ordering::Relaxed);
            let mut p = std::env::temp_dir();
            p.push(format!("slo-cli-test-{}-{id}-{name}", std::process::id()));
            std::fs::write(&p, contents).expect("write temp file");
            TempPath(p)
        }
    }

    fn dispatch_str(args: &[&str]) -> Result<String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        dispatch(&v)
    }

    #[test]
    fn help_prints_usage() {
        let out = dispatch_str(&["help"]).expect("help ok");
        assert!(out.contains("usage: slo"));
    }

    #[test]
    fn unknown_command_fails() {
        assert!(dispatch_str(&["bogus"]).is_err());
        assert!(dispatch_str(&[]).is_err());
    }

    #[test]
    fn run_executes() {
        let f = write_sample();
        let out = dispatch_str(&["run", f.0.to_str().expect("utf8 path")]).expect("run ok");
        assert!(out.contains("exit      : 3"));
        assert!(out.contains("cycles"));
    }

    #[test]
    fn analyze_reports_types() {
        let f = write_sample();
        let out = dispatch_str(&["analyze", f.0.to_str().expect("utf8 path")]).expect("analyze ok");
        assert!(out.contains("1 record types, 1 legal"));
        assert!(out.contains("pair"));
        assert!(out.contains("*OK*"));
    }

    #[test]
    fn advise_renders_report() {
        let f = write_sample();
        let out = dispatch_str(&["advise", f.0.to_str().expect("utf8 path")]).expect("advise ok");
        assert!(out.contains("Type     : pair"));
        assert!(out.contains("\"hot\""));
    }

    #[test]
    fn optimize_prints_plan_and_ir() {
        let f = write_sample();
        let out = dispatch_str(&[
            "optimize",
            f.0.to_str().expect("utf8 path"),
            "--scheme",
            "ispbo",
        ])
        .expect("optimize ok");
        assert!(out.contains("transformed"));
        assert!(out.contains("record pair"));
    }

    #[test]
    fn optimize_measure_runs_both() {
        let f = write_sample();
        let out = dispatch_str(&["optimize", f.0.to_str().expect("utf8 path"), "--measure"])
            .expect("optimize ok");
        assert!(out.contains("cycles"));
        assert!(out.contains("%"));
    }

    #[test]
    fn profile_roundtrips_through_file() {
        let f = write_sample();
        let prof = tempfile_path::write_temp("p.prof", "");
        let out = dispatch_str(&[
            "profile",
            f.0.to_str().expect("utf8 path"),
            "-o",
            prof.0.to_str().expect("utf8 path"),
        ])
        .expect("profile ok");
        assert!(out.contains("wrote"));
        // use the profile for a pbo advise
        let out = dispatch_str(&[
            "advise",
            f.0.to_str().expect("utf8 path"),
            "--scheme",
            "pbo",
            "--profile",
            prof.0.to_str().expect("utf8 path"),
        ])
        .expect("pbo advise ok");
        assert!(out.contains("Type     : pair"));
        assert!(out.contains("miss :"), "d-cache data must be attributed");
    }

    #[test]
    fn print_normalizes_ir() {
        let f = write_sample();
        let out = dispatch_str(&["print", f.0.to_str().expect("utf8 path")]).expect("print ok");
        assert!(out.contains("record pair"));
        assert!(out.contains("func main() -> i64 {"));
        // printing is a fixpoint
        let f2 = tempfile_path::write_temp("round.sir", &out);
        let out2 = dispatch_str(&["print", f2.0.to_str().expect("utf8 path")]).expect("reprint ok");
        assert_eq!(out, out2);
    }

    #[test]
    fn vcg_emits_graph() {
        let f = write_sample();
        let out = dispatch_str(&["vcg", f.0.to_str().expect("utf8 path"), "pair"]).expect("vcg ok");
        assert!(out.starts_with("graph: {"));
        assert!(out.contains("\"hot\""));
    }

    #[test]
    fn vcg_unknown_record_fails() {
        let f = write_sample();
        assert!(dispatch_str(&["vcg", f.0.to_str().expect("utf8 path"), "zzz"]).is_err());
    }

    #[test]
    fn pbo_without_profile_fails() {
        let f = write_sample();
        let err = dispatch_str(&[
            "optimize",
            f.0.to_str().expect("utf8 path"),
            "--scheme",
            "pbo",
        ]);
        // bare `pbo` without --profile collects nothing and errors
        assert!(err.is_err());
    }

    #[test]
    fn bad_file_reports_error() {
        assert!(dispatch_str(&["run", "/nonexistent/x.sir"]).is_err());
        let bad = tempfile_path::write_temp("bad.sir", "record { }");
        assert!(dispatch_str(&["run", bad.0.to_str().expect("utf8 path")]).is_err());
    }
}
