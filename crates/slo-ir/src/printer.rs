//! Textual IR printing. The output is parseable by [`crate::parser`] —
//! `parse(print(p))` round-trips every construct.

use crate::instr::Instr;
use crate::module::{FuncKind, Program};
use crate::types::TypeId;
use std::fmt::Write as _;

/// Render a whole program in the textual IR syntax.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();

    for rid in p.types.record_ids() {
        let rec = p.types.record(rid);
        let fields: Vec<String> = rec
            .fields
            .iter()
            .map(|f| match f.bit_width {
                Some(w) => format!("{}: {}:{}", f.name, p.types.display(f.ty), w),
                None => format!("{}: {}", f.name, p.types.display(f.ty)),
            })
            .collect();
        let _ = writeln!(out, "record {} {{ {} }}", rec.name, fields.join(", "));
    }
    if p.types.num_records() > 0 {
        out.push('\n');
    }

    for gid in p.global_ids() {
        let g = p.global(gid);
        let _ = writeln!(out, "global {}: {}", g.name, p.types.display(g.ty));
    }
    if !p.globals.is_empty() {
        out.push('\n');
    }

    for fid in p.func_ids() {
        let f = p.func(fid);
        let params: Vec<String> = f.params.iter().map(|(_, t)| p.types.display(*t)).collect();
        let sig = format!(
            "func {}({}) -> {}",
            f.name,
            params.join(", "),
            p.types.display(f.ret)
        );
        match f.kind {
            FuncKind::External => {
                let _ = writeln!(out, "extern {sig}");
                continue;
            }
            FuncKind::Libc => {
                let _ = writeln!(out, "libc {sig}");
                continue;
            }
            FuncKind::Defined => {}
        }
        let _ = writeln!(out, "{sig} {{");
        for bid in f.block_ids() {
            let _ = writeln!(out, "{bid}:");
            for ins in &f.block(bid).instrs {
                let _ = writeln!(out, "  {}", print_instr(p, ins));
            }
        }
        let _ = writeln!(out, "}}\n");
    }

    out
}

fn ty(p: &Program, t: TypeId) -> String {
    p.types.display(t)
}

/// Render a single instruction.
pub fn print_instr(p: &Program, ins: &Instr) -> String {
    match ins {
        Instr::Assign { dst, src } => format!("{dst} = {src}"),
        Instr::Bin { dst, op, lhs, rhs } => format!("{dst} = {} {lhs}, {rhs}", op.name()),
        Instr::Cmp { dst, op, lhs, rhs } => {
            format!("{dst} = cmp.{} {lhs}, {rhs}", op.name())
        }
        Instr::Cast { dst, src, from, to } => {
            format!("{dst} = cast {src} : {} -> {}", ty(p, *from), ty(p, *to))
        }
        Instr::FieldAddr {
            dst,
            base,
            record,
            field,
        } => {
            let rec = p.types.record(*record);
            format!(
                "{dst} = fieldaddr {base}, {}.{}",
                rec.name, rec.fields[*field as usize].name
            )
        }
        Instr::IndexAddr {
            dst,
            base,
            elem,
            index,
        } => format!("{dst} = indexaddr {base}, {}, {index}", ty(p, *elem)),
        Instr::Load { dst, addr, ty: t } => format!("{dst} = load {addr} : {}", ty(p, *t)),
        Instr::Store { addr, value, ty: t } => {
            format!("store {value}, {addr} : {}", ty(p, *t))
        }
        Instr::LoadGlobal { dst, global } => {
            format!("{dst} = gload {}", p.global(*global).name)
        }
        Instr::StoreGlobal { global, value } => {
            format!("gstore {value}, {}", p.global(*global).name)
        }
        Instr::AddrOfGlobal { dst, global } => {
            format!("{dst} = gaddr {}", p.global(*global).name)
        }
        Instr::Alloc {
            dst,
            elem,
            count,
            zeroed,
        } => {
            let op = if *zeroed { "zalloc" } else { "alloc" };
            format!("{dst} = {op} {}, {count}", ty(p, *elem))
        }
        Instr::Free { ptr } => format!("free {ptr}"),
        Instr::Realloc {
            dst,
            ptr,
            elem,
            count,
        } => format!("{dst} = realloc {ptr}, {}, {count}", ty(p, *elem)),
        Instr::Memcpy { dst, src, bytes } => format!("memcpy {dst}, {src}, {bytes}"),
        Instr::Memset { dst, val, bytes } => format!("memset {dst}, {val}, {bytes}"),
        Instr::Call { dst, callee, args } => {
            let a: Vec<String> = args.iter().map(|x| x.to_string()).collect();
            let call = format!("call {}({})", p.func(*callee).name, a.join(", "));
            match dst {
                Some(d) => format!("{d} = {call}"),
                None => call,
            }
        }
        Instr::CallIndirect {
            dst,
            target,
            args,
            arg_types,
        } => {
            let a: Vec<String> = args.iter().map(|x| x.to_string()).collect();
            let ts: Vec<String> = arg_types.iter().map(|t| ty(p, *t)).collect();
            let call = format!("icall {target}({}) : ({})", a.join(", "), ts.join(", "));
            match dst {
                Some(d) => format!("{d} = {call}"),
                None => call,
            }
        }
        Instr::FuncAddr { dst, func } => format!("{dst} = fnaddr {}", p.func(*func).name),
        Instr::Jump { target } => format!("jump {target}"),
        Instr::Branch {
            cond,
            then_bb,
            else_bb,
        } => format!("br {cond}, {then_bb}, {else_bb}"),
        Instr::Return { value } => match value {
            Some(v) => format!("ret {v}"),
            None => "ret".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::Operand;
    use crate::types::{Field, ScalarKind};

    #[test]
    fn prints_records_and_globals() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let u32t = pb.scalar(ScalarKind::U32);
        let (_, rty) = pb.record(
            "node",
            vec![Field::new("v", i64t), Field::bitfield("flags", u32t, 3)],
        );
        let pnode = pb.ptr(rty);
        pb.global("P", pnode);
        let p = pb.finish();
        let s = print_program(&p);
        assert!(s.contains("record node { v: i64, flags: u32:3 }"));
        assert!(s.contains("global P: ptr<node>"));
    }

    #[test]
    fn prints_function_body() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let (rid, rty) = pb.record("pair", vec![Field::new("a", i64t)]);
        let f = pb.declare("main", vec![], i64t);
        pb.define(f, |fb| {
            let x = fb.alloc(rty, Operand::int(8));
            let a = fb.field_addr(x.into(), rid, 0);
            let v = fb.load(a.into(), i64t);
            fb.ret(Some(v.into()));
        });
        let p = pb.finish();
        let s = print_program(&p);
        assert!(s.contains("func main() -> i64 {"));
        assert!(s.contains("r0 = alloc pair, 8"));
        assert!(s.contains("r1 = fieldaddr r0, pair.a"));
        assert!(s.contains("r2 = load r1 : i64"));
        assert!(s.contains("ret r2"));
    }

    #[test]
    fn prints_extern_and_libc() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let void = pb.void();
        pb.external("mystery", vec![i64t], void);
        pb.libc("fwrite", vec![i64t], i64t);
        let p = pb.finish();
        let s = print_program(&p);
        assert!(s.contains("extern func mystery(i64) -> void"));
        assert!(s.contains("libc func fwrite(i64) -> i64"));
    }

    #[test]
    fn prints_control_flow() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("f", vec![], i64t);
        pb.define(f, |fb| {
            fb.count_loop(Operand::int(2), |fb, _| {
                fb.iconst(0);
            });
            fb.ret(Some(Operand::int(0)));
        });
        let p = pb.finish();
        let s = print_program(&p);
        assert!(s.contains("jump bb1"));
        assert!(s.contains("br r1, bb2, bb3"));
    }
}
