//! Call graph construction with Tarjan SCCs (for recursion-aware
//! inter-procedural count propagation, the paper's ISPBO scheme).

use crate::instr::{BlockId, FuncId, Instr, InstrRef};
use crate::module::Program;
use std::collections::HashMap;

/// A direct call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// The calling function.
    pub caller: FuncId,
    /// The called function.
    pub callee: FuncId,
    /// Where the call instruction lives.
    pub at: InstrRef,
    /// Block containing the call (denormalized for convenience).
    pub block: BlockId,
}

/// The program call graph over direct calls. Indirect calls contribute no
/// edges (the FE invalidates types escaping to them instead).
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// All direct call sites, grouped by caller.
    pub sites: Vec<CallSite>,
    callees: HashMap<FuncId, Vec<usize>>, // caller -> indices into sites
    callers: HashMap<FuncId, Vec<usize>>, // callee -> indices into sites
}

impl CallGraph {
    /// Build the call graph of `p`.
    pub fn build(p: &Program) -> Self {
        let mut cg = CallGraph::default();
        for fid in p.func_ids() {
            if !p.func(fid).is_defined() {
                continue;
            }
            for (at, ins) in p.instrs_of(fid) {
                if let Instr::Call { callee, .. } = ins {
                    let idx = cg.sites.len();
                    cg.sites.push(CallSite {
                        caller: fid,
                        callee: *callee,
                        at,
                        block: at.block,
                    });
                    cg.callees.entry(fid).or_default().push(idx);
                    cg.callers.entry(*callee).or_default().push(idx);
                }
            }
        }
        cg
    }

    /// Call sites inside `f`.
    pub fn calls_from(&self, f: FuncId) -> impl Iterator<Item = &CallSite> {
        self.callees
            .get(&f)
            .into_iter()
            .flatten()
            .map(|&i| &self.sites[i])
    }

    /// Call sites targeting `f`.
    pub fn calls_to(&self, f: FuncId) -> impl Iterator<Item = &CallSite> {
        self.callers
            .get(&f)
            .into_iter()
            .flatten()
            .map(|&i| &self.sites[i])
    }

    /// Strongly connected components of the call graph over *defined*
    /// functions, returned in reverse topological order (callees before
    /// callers), as Tarjan emits them.
    pub fn sccs(&self, p: &Program) -> Vec<Vec<FuncId>> {
        let n = p.funcs.len();
        let mut state = TarjanState {
            index: vec![usize::MAX; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            sccs: Vec::new(),
        };
        for fid in p.func_ids() {
            if p.func(fid).is_defined() && state.index[fid.index()] == usize::MAX {
                self.strongconnect(p, fid, &mut state);
            }
        }
        state.sccs
    }

    fn strongconnect(&self, p: &Program, v: FuncId, st: &mut TarjanState) {
        st.index[v.index()] = st.next_index;
        st.lowlink[v.index()] = st.next_index;
        st.next_index += 1;
        st.stack.push(v);
        st.on_stack[v.index()] = true;

        let callees: Vec<FuncId> = self
            .calls_from(v)
            .map(|s| s.callee)
            .filter(|c| p.func(*c).is_defined())
            .collect();
        for w in callees {
            if st.index[w.index()] == usize::MAX {
                self.strongconnect(p, w, st);
                st.lowlink[v.index()] = st.lowlink[v.index()].min(st.lowlink[w.index()]);
            } else if st.on_stack[w.index()] {
                st.lowlink[v.index()] = st.lowlink[v.index()].min(st.index[w.index()]);
            }
        }

        if st.lowlink[v.index()] == st.index[v.index()] {
            let mut scc = Vec::new();
            loop {
                let w = st.stack.pop().expect("tarjan stack underflow");
                st.on_stack[w.index()] = false;
                scc.push(w);
                if w == v {
                    break;
                }
            }
            st.sccs.push(scc);
        }
    }

    /// Whether `f` participates in recursion (its SCC has >1 member or it
    /// calls itself directly).
    pub fn is_recursive(&self, p: &Program, f: FuncId) -> bool {
        if self.calls_from(f).any(|s| s.callee == f) {
            return true;
        }
        self.sccs(p)
            .iter()
            .any(|scc| scc.len() > 1 && scc.contains(&f))
    }
}

struct TarjanState {
    index: Vec<usize>,
    lowlink: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<FuncId>,
    next_index: usize,
    sccs: Vec<Vec<FuncId>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::Operand;
    use crate::types::ScalarKind;

    fn chain_program() -> (Program, FuncId, FuncId, FuncId) {
        // main -> a -> b
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let b = pb.declare("b", vec![], i64t);
        let a = pb.declare("a", vec![], i64t);
        let main = pb.declare("main", vec![], i64t);
        pb.define(b, |fb| fb.ret(Some(Operand::int(1))));
        pb.define(a, |fb| {
            let v = fb.call(b, vec![]);
            fb.ret(Some(v.into()));
        });
        pb.define(main, |fb| {
            let v = fb.call(a, vec![]);
            fb.ret(Some(v.into()));
        });
        (pb.finish(), main, a, b)
    }

    #[test]
    fn edges_recorded() {
        let (p, main, a, b) = chain_program();
        let cg = CallGraph::build(&p);
        assert_eq!(cg.sites.len(), 2);
        assert_eq!(cg.calls_from(main).count(), 1);
        assert_eq!(cg.calls_from(main).next().map(|s| s.callee), Some(a));
        assert_eq!(cg.calls_to(b).count(), 1);
        assert_eq!(cg.calls_to(main).count(), 0);
    }

    #[test]
    fn sccs_reverse_topological() {
        let (p, main, a, b) = chain_program();
        let cg = CallGraph::build(&p);
        let sccs = cg.sccs(&p);
        assert_eq!(sccs.len(), 3);
        // callee-first
        assert_eq!(sccs[0], vec![b]);
        assert_eq!(sccs[1], vec![a]);
        assert_eq!(sccs[2], vec![main]);
    }

    #[test]
    fn mutual_recursion_one_scc() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("f", vec![], i64t);
        let g = pb.declare("g", vec![], i64t);
        pb.define(f, |fb| {
            let v = fb.call(g, vec![]);
            fb.ret(Some(v.into()));
        });
        pb.define(g, |fb| {
            let v = fb.call(f, vec![]);
            fb.ret(Some(v.into()));
        });
        let p = pb.finish();
        let cg = CallGraph::build(&p);
        let sccs = cg.sccs(&p);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 2);
        assert!(cg.is_recursive(&p, f));
        assert!(cg.is_recursive(&p, g));
    }

    #[test]
    fn self_recursion() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("f", vec![i64t], i64t);
        pb.define(f, |fb| {
            let v = fb.call(f, vec![fb.param(0).into()]);
            fb.ret(Some(v.into()));
        });
        let p = pb.finish();
        let cg = CallGraph::build(&p);
        assert!(cg.is_recursive(&p, f));
    }

    #[test]
    fn external_callee_no_scc_entry() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let ext = pb.external("ext", vec![], i64t);
        let main = pb.declare("main", vec![], i64t);
        pb.define(main, |fb| {
            let v = fb.call(ext, vec![]);
            fb.ret(Some(v.into()));
        });
        let p = pb.finish();
        let cg = CallGraph::build(&p);
        // edge exists, but the SCC list only covers defined funcs
        assert_eq!(cg.calls_to(ext).count(), 1);
        let sccs = cg.sccs(&p);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0], vec![main]);
        assert!(!cg.is_recursive(&p, main));
    }
}
