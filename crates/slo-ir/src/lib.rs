//! # slo-ir — compiler IR substrate for structure layout optimization
//!
//! A from-scratch, register-based compiler intermediate representation for
//! a C-like language, built as the substrate for the reproduction of
//! *"Practical Structure Layout Optimization and Advice"* (Hundt,
//! Mannarswamy, Chakrabarti — CGO 2006).
//!
//! The IR deliberately exposes the program constructs the paper's analyses
//! key on:
//!
//! * **record types** with C-like layout ([`types`]),
//! * explicit **field addressing** (`FieldAddr`) feeding typed loads and
//!   stores ([`instr`]),
//! * **casts**, **memory-streaming ops** (`memcpy`/`memset`), **dynamic
//!   allocation** (`alloc`/`zalloc`/`realloc`/`free`), direct, indirect
//!   and **libc-marked** calls — the triggers of the legality tests,
//! * functions grouped into **compilation units** ([`module`]) so the
//!   FE/IPA/BE phase split of the SYZYGY optimizer can be modeled
//!   faithfully.
//!
//! On top of the core data structures it provides
//! [dominators](dom::DomTree), [Havlak loop nesting](loops::LoopForest)
//! (the paper's loop recognition, after Havlak '97), a
//! [call graph](callgraph::CallGraph) with Tarjan SCCs, a
//! [builder](builder::ProgramBuilder) for ergonomic program construction,
//! a [verifier](verify::verify), and a textual format with a
//! [printer](printer::print_program) and [parser](parser::parse) that
//! round-trip.
//!
//! # Examples
//!
//! ```
//! use slo_ir::parser::parse;
//! use slo_ir::printer::print_program;
//!
//! let src = r#"
//! record pair { hot: i64, cold: i64 }
//! func main() -> i64 {
//! bb0:
//!   r0 = alloc pair, 64
//!   r1 = fieldaddr r0, pair.hot
//!   store 1, r1 : i64
//!   r2 = load r1 : i64
//!   ret r2
//! }
//! "#;
//! let program = parse(src)?;
//! assert_eq!(program.types.num_records(), 1);
//! let text = print_program(&program);
//! assert_eq!(text, print_program(&parse(&text)?));
//! # Ok::<(), slo_ir::parser::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod callgraph;
pub mod dom;
pub mod fingerprint;
pub mod instr;
pub mod loops;
pub mod module;
pub mod parser;
pub mod printer;
pub mod types;
pub mod verify;

pub use builder::{FuncBuilder, ProgramBuilder};
pub use fingerprint::{fingerprint_program, Fnv64};
pub use instr::{BinOp, BlockId, CmpOp, Const, FuncId, GlobalId, Instr, InstrRef, Operand, Reg};
pub use module::{BasicBlock, FuncKind, Function, GlobalVar, Program, Unit};
pub use types::{
    Field, LayoutCache, RecordId, RecordLayout, RecordType, ScalarKind, Type, TypeId, TypeTable,
};
