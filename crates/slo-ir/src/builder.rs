//! Ergonomic construction of IR programs.
//!
//! [`ProgramBuilder`] declares types, globals and function signatures;
//! [`FuncBuilder`] fills in function bodies with structured-control-flow
//! helpers (`count_loop`, `while_loop`, `if_then`, …) so workload authors
//! never juggle raw block ids.
//!
//! # Examples
//!
//! ```
//! use slo_ir::builder::ProgramBuilder;
//! use slo_ir::types::{Field, ScalarKind};
//!
//! let mut pb = ProgramBuilder::new();
//! let i64t = pb.scalar(ScalarKind::I64);
//! let (node, node_ty) = pb.record("node", vec![
//!     Field::new("hot", i64t),
//!     Field::new("cold", i64t),
//! ]);
//! let main = pb.declare("main", vec![], i64t);
//! pb.define(main, |fb| {
//!     let arr = fb.alloc(node_ty, 100i64.into());
//!     let sum = fb.fresh();
//!     fb.assign(sum, 0i64.into());
//!     fb.count_loop(100i64.into(), |fb, i| {
//!         let e = fb.index_addr(arr, node_ty, i.into());
//!         let pa = fb.field_addr(e.into(), node, 0);
//!         let v = fb.load(pa.into(), i64t);
//!         let s2 = fb.add(sum.into(), v.into());
//!         fb.assign(sum, s2.into());
//!     });
//!     fb.ret(Some(sum.into()));
//! });
//! let prog = pb.finish();
//! assert_eq!(prog.funcs.len(), 1);
//! ```

use crate::instr::{BinOp, BlockId, CmpOp, Const, FuncId, GlobalId, Instr, Operand, Reg};
use crate::module::{BasicBlock, FuncKind, Function, GlobalVar, Program, Unit};
use crate::types::{Field, RecordId, RecordType, ScalarKind, TypeId};

/// Builds a whole [`Program`]: types, globals, function signatures, bodies.
#[derive(Debug)]
pub struct ProgramBuilder {
    prog: Program,
    cur_unit: usize,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Create a builder with one default compilation unit.
    pub fn new() -> Self {
        ProgramBuilder {
            prog: Program::new(),
            cur_unit: 0,
        }
    }

    /// Start a new compilation unit; subsequent declarations belong to it.
    pub fn unit(&mut self, name: impl Into<String>) -> usize {
        self.prog.units.push(Unit { name: name.into() });
        self.cur_unit = self.prog.units.len() - 1;
        self.cur_unit
    }

    /// Intern a scalar type.
    pub fn scalar(&mut self, k: ScalarKind) -> TypeId {
        self.prog.types.scalar(k)
    }

    /// Intern a pointer type.
    pub fn ptr(&mut self, to: TypeId) -> TypeId {
        self.prog.types.ptr(to)
    }

    /// Intern the void type.
    pub fn void(&mut self) -> TypeId {
        self.prog.types.void()
    }

    /// Intern an array type.
    pub fn array(&mut self, elem: TypeId, len: u64) -> TypeId {
        self.prog.types.array(elem, len)
    }

    /// Intern the function-pointer type.
    pub fn func_ptr(&mut self) -> TypeId {
        self.prog.types.func_ptr()
    }

    /// Declare a record type.
    pub fn record(&mut self, name: impl Into<String>, fields: Vec<Field>) -> (RecordId, TypeId) {
        self.prog.types.add_record(RecordType {
            name: name.into(),
            fields,
        })
    }

    /// Declare a record type with no fields yet (for recursive types);
    /// complete it later with [`ProgramBuilder::complete_record`].
    pub fn record_fwd(&mut self, name: impl Into<String>) -> (RecordId, TypeId) {
        self.prog.types.add_record(RecordType {
            name: name.into(),
            fields: vec![],
        })
    }

    /// Fill in the fields of a forward-declared record.
    pub fn complete_record(&mut self, rid: RecordId, fields: Vec<Field>) {
        let name = self.prog.types.record(rid).name.clone();
        self.prog
            .types
            .replace_record(rid, RecordType { name, fields });
    }

    /// Add a global variable.
    pub fn global(&mut self, name: impl Into<String>, ty: TypeId) -> GlobalId {
        self.prog.add_global(GlobalVar {
            name: name.into(),
            ty,
        })
    }

    /// Declare a defined function (body filled in later via
    /// [`ProgramBuilder::define`]). Parameters become registers `0..n`.
    pub fn declare(&mut self, name: impl Into<String>, params: Vec<TypeId>, ret: TypeId) -> FuncId {
        self.declare_kind(name, params, ret, FuncKind::Defined)
    }

    /// Declare an external (out-of-scope) function.
    pub fn external(
        &mut self,
        name: impl Into<String>,
        params: Vec<TypeId>,
        ret: TypeId,
    ) -> FuncId {
        self.declare_kind(name, params, ret, FuncKind::External)
    }

    /// Declare a standard-library function (LIBC-marked).
    pub fn libc(&mut self, name: impl Into<String>, params: Vec<TypeId>, ret: TypeId) -> FuncId {
        self.declare_kind(name, params, ret, FuncKind::Libc)
    }

    fn declare_kind(
        &mut self,
        name: impl Into<String>,
        params: Vec<TypeId>,
        ret: TypeId,
        kind: FuncKind,
    ) -> FuncId {
        let params: Vec<(Reg, TypeId)> = params
            .into_iter()
            .enumerate()
            .map(|(i, t)| (Reg(i as u32), t))
            .collect();
        let num_regs = params.len() as u32;
        self.prog.add_func(Function {
            name: name.into(),
            params,
            ret,
            kind,
            blocks: if kind == FuncKind::Defined {
                vec![BasicBlock::default()]
            } else {
                vec![]
            },
            num_regs,
            unit: self.cur_unit,
        })
    }

    /// Build the body of a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if the function is not `Defined`.
    pub fn define(&mut self, fid: FuncId, build: impl FnOnce(&mut FuncBuilder<'_>)) {
        assert!(
            self.prog.func(fid).is_defined(),
            "cannot define body of non-defined function `{}`",
            self.prog.func(fid).name
        );
        let func = std::mem::replace(
            &mut self.prog.funcs[fid.index()],
            Function {
                name: String::new(),
                params: vec![],
                ret: TypeId(0),
                kind: FuncKind::Defined,
                blocks: vec![],
                num_regs: 0,
                unit: 0,
            },
        );
        let mut fb = FuncBuilder {
            prog: &mut self.prog,
            func,
            cur: BlockId(0),
        };
        build(&mut fb);
        let func = fb.func;
        self.prog.funcs[fid.index()] = func;
    }

    /// Finish building; returns the program.
    pub fn finish(self) -> Program {
        self.prog
    }

    /// Read-only access to the program under construction.
    pub fn program(&self) -> &Program {
        &self.prog
    }
}

/// Builds one function body. Obtained from [`ProgramBuilder::define`].
#[derive(Debug)]
pub struct FuncBuilder<'a> {
    prog: &'a mut Program,
    func: Function,
    cur: BlockId,
}

impl FuncBuilder<'_> {
    /// The register holding parameter `i`.
    pub fn param(&self, i: usize) -> Reg {
        self.func.params[i].0
    }

    /// Allocate a fresh register.
    pub fn fresh(&mut self) -> Reg {
        self.func.fresh_reg()
    }

    /// Access the program's type table (interning allowed).
    pub fn types(&mut self) -> &mut crate::types::TypeTable {
        &mut self.prog.types
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Create a new (empty, unlinked) block.
    pub fn new_block(&mut self) -> BlockId {
        self.func.blocks.push(BasicBlock::default());
        BlockId(self.func.blocks.len() as u32 - 1)
    }

    /// Switch the insertion point to `bb`.
    pub fn switch_to(&mut self, bb: BlockId) {
        self.cur = bb;
    }

    /// Append a raw instruction to the current block.
    pub fn push(&mut self, i: Instr) {
        self.func.blocks[self.cur.index()].instrs.push(i);
    }

    // ---- straight-line instruction helpers -------------------------------

    /// `dst = src`.
    pub fn assign(&mut self, dst: Reg, src: Operand) {
        self.push(Instr::Assign { dst, src });
    }

    /// Materialize an integer constant into a fresh register.
    pub fn iconst(&mut self, v: i64) -> Reg {
        let dst = self.fresh();
        self.assign(dst, Operand::Const(Const::Int(v)));
        dst
    }

    /// Materialize a float constant into a fresh register.
    pub fn fconst(&mut self, v: f64) -> Reg {
        let dst = self.fresh();
        self.assign(dst, Operand::Const(Const::Float(v)));
        dst
    }

    /// Generic binary operation.
    pub fn bin(&mut self, op: BinOp, lhs: Operand, rhs: Operand) -> Reg {
        let dst = self.fresh();
        self.push(Instr::Bin { dst, op, lhs, rhs });
        dst
    }

    /// `lhs + rhs`.
    pub fn add(&mut self, lhs: Operand, rhs: Operand) -> Reg {
        self.bin(BinOp::Add, lhs, rhs)
    }

    /// `lhs - rhs`.
    pub fn sub(&mut self, lhs: Operand, rhs: Operand) -> Reg {
        self.bin(BinOp::Sub, lhs, rhs)
    }

    /// `lhs * rhs`.
    pub fn mul(&mut self, lhs: Operand, rhs: Operand) -> Reg {
        self.bin(BinOp::Mul, lhs, rhs)
    }

    /// `lhs / rhs`.
    pub fn div(&mut self, lhs: Operand, rhs: Operand) -> Reg {
        self.bin(BinOp::Div, lhs, rhs)
    }

    /// Comparison producing 0/1.
    pub fn cmp(&mut self, op: CmpOp, lhs: Operand, rhs: Operand) -> Reg {
        let dst = self.fresh();
        self.push(Instr::Cmp { dst, op, lhs, rhs });
        dst
    }

    /// Cast a value between types (pointer casts fire CSTT/CSTF analyses).
    pub fn cast(&mut self, src: Operand, from: TypeId, to: TypeId) -> Reg {
        let dst = self.fresh();
        self.push(Instr::Cast { dst, src, from, to });
        dst
    }

    /// Address of `record.field` given a base pointer.
    pub fn field_addr(&mut self, base: Operand, record: RecordId, field: u32) -> Reg {
        let dst = self.fresh();
        self.push(Instr::FieldAddr {
            dst,
            base,
            record,
            field,
        });
        dst
    }

    /// Address of element `index` of an array of `elem` starting at `base`.
    pub fn index_addr(&mut self, base: impl Into<Operand>, elem: TypeId, index: Operand) -> Reg {
        let dst = self.fresh();
        self.push(Instr::IndexAddr {
            dst,
            base: base.into(),
            elem,
            index,
        });
        dst
    }

    /// Load a value of type `ty` from `addr`.
    pub fn load(&mut self, addr: Operand, ty: TypeId) -> Reg {
        let dst = self.fresh();
        self.push(Instr::Load { dst, addr, ty });
        dst
    }

    /// Store `value` of type `ty` to `addr`.
    pub fn store(&mut self, addr: Operand, value: Operand, ty: TypeId) {
        self.push(Instr::Store { addr, value, ty });
    }

    /// Convenience: load field `field` of `record` behind `base`.
    pub fn load_field(&mut self, base: Operand, record: RecordId, field: u32) -> Reg {
        let fty = self.prog.types.record(record).fields[field as usize].ty;
        let a = self.field_addr(base, record, field);
        self.load(a.into(), fty)
    }

    /// Convenience: store `value` into field `field` of `record` at `base`.
    pub fn store_field(&mut self, base: Operand, record: RecordId, field: u32, value: Operand) {
        let fty = self.prog.types.record(record).fields[field as usize].ty;
        let a = self.field_addr(base, record, field);
        self.store(a.into(), value, fty);
    }

    /// Read a global.
    pub fn load_global(&mut self, g: GlobalId) -> Reg {
        let dst = self.fresh();
        self.push(Instr::LoadGlobal { dst, global: g });
        dst
    }

    /// Write a global.
    pub fn store_global(&mut self, g: GlobalId, value: Operand) {
        self.push(Instr::StoreGlobal { global: g, value });
    }

    /// Address of a global aggregate.
    pub fn addr_of_global(&mut self, g: GlobalId) -> Reg {
        let dst = self.fresh();
        self.push(Instr::AddrOfGlobal { dst, global: g });
        dst
    }

    /// `malloc(count * sizeof(elem))`.
    pub fn alloc(&mut self, elem: TypeId, count: Operand) -> Reg {
        let dst = self.fresh();
        self.push(Instr::Alloc {
            dst,
            elem,
            count,
            zeroed: false,
        });
        dst
    }

    /// `calloc(count, sizeof(elem))`.
    pub fn calloc(&mut self, elem: TypeId, count: Operand) -> Reg {
        let dst = self.fresh();
        self.push(Instr::Alloc {
            dst,
            elem,
            count,
            zeroed: true,
        });
        dst
    }

    /// `free(ptr)`.
    pub fn free(&mut self, ptr: Operand) {
        self.push(Instr::Free { ptr });
    }

    /// `realloc(ptr, count * sizeof(elem))`.
    pub fn realloc(&mut self, ptr: Operand, elem: TypeId, count: Operand) -> Reg {
        let dst = self.fresh();
        self.push(Instr::Realloc {
            dst,
            ptr,
            elem,
            count,
        });
        dst
    }

    /// `memcpy(dst, src, bytes)`.
    pub fn memcpy(&mut self, dst: Operand, src: Operand, bytes: Operand) {
        self.push(Instr::Memcpy { dst, src, bytes });
    }

    /// `memset(dst, val, bytes)`.
    pub fn memset(&mut self, dst: Operand, val: Operand, bytes: Operand) {
        self.push(Instr::Memset { dst, val, bytes });
    }

    /// Direct call with a result.
    pub fn call(&mut self, callee: FuncId, args: Vec<Operand>) -> Reg {
        let dst = self.fresh();
        self.push(Instr::Call {
            dst: Some(dst),
            callee,
            args,
        });
        dst
    }

    /// Direct call ignoring any result.
    pub fn call_void(&mut self, callee: FuncId, args: Vec<Operand>) {
        self.push(Instr::Call {
            dst: None,
            callee,
            args,
        });
    }

    /// Indirect call through a function pointer.
    pub fn call_indirect(
        &mut self,
        target: Operand,
        args: Vec<Operand>,
        arg_types: Vec<TypeId>,
    ) -> Reg {
        let dst = self.fresh();
        self.push(Instr::CallIndirect {
            dst: Some(dst),
            target,
            args,
            arg_types,
        });
        dst
    }

    /// Materialize a function pointer.
    pub fn func_addr(&mut self, f: FuncId) -> Reg {
        let dst = self.fresh();
        self.push(Instr::FuncAddr { dst, func: f });
        dst
    }

    // ---- control flow helpers --------------------------------------------

    /// Unconditional jump; leaves the insertion point unchanged.
    pub fn jump(&mut self, target: BlockId) {
        self.push(Instr::Jump { target });
    }

    /// Conditional branch.
    pub fn branch(&mut self, cond: Operand, then_bb: BlockId, else_bb: BlockId) {
        self.push(Instr::Branch {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.push(Instr::Return { value });
    }

    /// Build a counted loop `for i in 0..n { body }`. The induction
    /// register is passed to `body`. After this call the insertion point
    /// is the loop exit block.
    pub fn count_loop(&mut self, n: Operand, body: impl FnOnce(&mut Self, Reg)) {
        let i = self.fresh();
        self.assign(i, Operand::int(0));
        let head = self.new_block();
        let body_bb = self.new_block();
        let exit = self.new_block();
        self.jump(head);
        self.switch_to(head);
        let c = self.cmp(CmpOp::Lt, i.into(), n);
        self.branch(c.into(), body_bb, exit);
        self.switch_to(body_bb);
        body(self, i);
        let inext = self.add(i.into(), Operand::int(1));
        self.assign(i, inext.into());
        self.jump(head);
        self.switch_to(exit);
    }

    /// Build a while loop. `cond` emits code in the header block and
    /// returns the condition operand; `body` fills the loop body. The
    /// insertion point ends at the exit block.
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut Self) -> Operand,
        body: impl FnOnce(&mut Self),
    ) {
        let head = self.new_block();
        let body_bb = self.new_block();
        let exit = self.new_block();
        self.jump(head);
        self.switch_to(head);
        let c = cond(self);
        self.branch(c, body_bb, exit);
        self.switch_to(body_bb);
        body(self);
        self.jump(head);
        self.switch_to(exit);
    }

    /// Build `if cond { then }`; insertion point ends at the join block.
    pub fn if_then(&mut self, cond: Operand, then: impl FnOnce(&mut Self)) {
        let then_bb = self.new_block();
        let join = self.new_block();
        self.branch(cond, then_bb, join);
        self.switch_to(then_bb);
        then(self);
        self.jump(join);
        self.switch_to(join);
    }

    /// Build `if cond { then } else { els }`; ends at the join block.
    pub fn if_then_else(
        &mut self,
        cond: Operand,
        then: impl FnOnce(&mut Self),
        els: impl FnOnce(&mut Self),
    ) {
        let then_bb = self.new_block();
        let else_bb = self.new_block();
        let join = self.new_block();
        self.branch(cond, then_bb, else_bb);
        self.switch_to(then_bb);
        then(self);
        self.jump(join);
        self.switch_to(else_bb);
        els(self);
        self.jump(join);
        self.switch_to(join);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Field;

    #[test]
    fn build_minimal_main() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let main = pb.declare("main", vec![], i64t);
        pb.define(main, |fb| {
            let v = fb.iconst(42);
            fb.ret(Some(v.into()));
        });
        let p = pb.finish();
        let f = p.func(main);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].instrs.len(), 2);
        assert!(f.blocks[0].terminator().is_some());
    }

    #[test]
    fn count_loop_structure() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("f", vec![], i64t);
        pb.define(f, |fb| {
            fb.count_loop(Operand::int(10), |fb, _i| {
                fb.iconst(1);
            });
            fb.ret(Some(Operand::int(0)));
        });
        let p = pb.finish();
        let func = p.func(f);
        // entry + head + body + exit
        assert_eq!(func.blocks.len(), 4);
        // head has a branch with two successors
        let head = func.block(BlockId(1));
        assert_eq!(head.successors().len(), 2);
        // body jumps back to head
        let body = func.block(BlockId(2));
        assert_eq!(body.successors(), vec![BlockId(1)]);
    }

    #[test]
    fn if_then_else_structure() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("f", vec![i64t], i64t);
        pb.define(f, |fb| {
            let p0 = fb.param(0);
            let c = fb.cmp(CmpOp::Gt, p0.into(), Operand::int(0));
            let r = fb.fresh();
            fb.if_then_else(
                c.into(),
                |fb| fb.assign(r, Operand::int(1)),
                |fb| fb.assign(r, Operand::int(-1)),
            );
            fb.ret(Some(r.into()));
        });
        let p = pb.finish();
        assert_eq!(p.func(f).blocks.len(), 4); // entry, then, else, join
    }

    #[test]
    fn field_access_helpers() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let (rid, rty) = pb.record("pair", vec![Field::new("a", i64t), Field::new("b", i64t)]);
        let f = pb.declare("f", vec![], i64t);
        pb.define(f, |fb| {
            let p = fb.alloc(rty, Operand::int(4));
            fb.store_field(p.into(), rid, 0, Operand::int(5));
            let v = fb.load_field(p.into(), rid, 0);
            fb.ret(Some(v.into()));
        });
        let prog = pb.finish();
        let n_fa = prog
            .instrs_of(f)
            .filter(|(_, i)| matches!(i, Instr::FieldAddr { .. }))
            .count();
        assert_eq!(n_fa, 2);
    }

    #[test]
    fn params_are_low_registers() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("f", vec![i64t, i64t], i64t);
        pb.define(f, |fb| {
            assert_eq!(fb.param(0), Reg(0));
            assert_eq!(fb.param(1), Reg(1));
            let fresh = fb.fresh();
            assert_eq!(fresh, Reg(2));
            fb.ret(Some(fresh.into()));
        });
    }

    #[test]
    fn recursive_record_via_fwd() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let (rid, rty) = pb.record_fwd("list");
        let pnode = pb.ptr(rty);
        pb.complete_record(rid, vec![Field::new("v", i64t), Field::new("next", pnode)]);
        let p = pb.finish();
        assert!(p.types.is_recursive(rid));
    }

    #[test]
    #[should_panic(expected = "cannot define body")]
    fn defining_external_panics() {
        let mut pb = ProgramBuilder::new();
        let void = pb.void();
        let f = pb.external("ext", vec![], void);
        pb.define(f, |_| {});
    }

    #[test]
    fn while_loop_structure() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("f", vec![], i64t);
        pb.define(f, |fb| {
            let i = fb.fresh();
            fb.assign(i, Operand::int(0));
            fb.while_loop(
                |fb| fb.cmp(CmpOp::Lt, i.into(), Operand::int(5)).into(),
                |fb| {
                    let n = fb.add(i.into(), Operand::int(1));
                    fb.assign(i, n.into());
                },
            );
            fb.ret(Some(i.into()));
        });
        let p = pb.finish();
        assert_eq!(p.func(f).blocks.len(), 4);
    }

    #[test]
    fn units_tag_functions() {
        let mut pb = ProgramBuilder::new();
        let void = pb.void();
        let f1 = pb.declare("f1", vec![], void);
        pb.unit("second.c");
        let f2 = pb.declare("f2", vec![], void);
        let p = pb.program();
        assert_eq!(p.func(f1).unit, 0);
        assert_eq!(p.func(f2).unit, 1);
    }
}
