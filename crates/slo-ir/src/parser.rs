//! Parser for the textual IR syntax emitted by [`crate::printer`].
//!
//! The grammar (informally):
//!
//! ```text
//! program  := item*
//! item     := record | global | extern | libc | func
//! record   := "record" NAME "{" field ("," field)* "}"
//! field    := NAME ":" type (":" INT)?          // optional bit width
//! global   := "global" NAME ":" type
//! extern   := "extern" sig
//! libc     := "libc" sig
//! func     := sig "{" block+ "}"
//! sig      := "func" NAME "(" (type ("," type)*)? ")" "->" type
//! block    := LABEL ":" instr+
//! type     := "void" | scalar | "fnptr" | "ptr" "<" type ">"
//!           | "[" type ";" INT "]" | NAME
//! ```
//!
//! Instruction syntax matches the printer exactly; see the module tests
//! and `printer.rs` for examples.

use crate::instr::{BinOp, BlockId, CmpOp, Const, FuncId, Instr, Operand, Reg};
use crate::module::{BasicBlock, FuncKind, Function, GlobalVar, Program};
use crate::types::{Field, RecordType, ScalarKind, TypeId};
use std::collections::HashMap;
use std::fmt;

/// A parse failure with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending token.
    pub line: u32,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LAngle,
    RAngle,
    LBrack,
    RBrack,
    Comma,
    Colon,
    Semi,
    Arrow,
    Eq,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Float(v) => write!(f, "`{v}`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LAngle => write!(f, "`<`"),
            Tok::RAngle => write!(f, "`>`"),
            Tok::LBrack => write!(f, "`[`"),
            Tok::RBrack => write!(f, "`]`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

fn lex(src: &str) -> PResult<Vec<(Tok, u32)>> {
    let mut toks = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                toks.push((Tok::LBrace, line));
                i += 1;
            }
            '}' => {
                toks.push((Tok::RBrace, line));
                i += 1;
            }
            '(' => {
                toks.push((Tok::LParen, line));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, line));
                i += 1;
            }
            '<' => {
                toks.push((Tok::LAngle, line));
                i += 1;
            }
            '>' => {
                toks.push((Tok::RAngle, line));
                i += 1;
            }
            '[' => {
                toks.push((Tok::LBrack, line));
                i += 1;
            }
            ']' => {
                toks.push((Tok::RBrack, line));
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, line));
                i += 1;
            }
            ':' => {
                toks.push((Tok::Colon, line));
                i += 1;
            }
            ';' => {
                toks.push((Tok::Semi, line));
                i += 1;
            }
            '=' => {
                toks.push((Tok::Eq, line));
                i += 1;
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    toks.push((Tok::Arrow, line));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
                    let (tok, ni) = lex_number(src, i, line)?;
                    toks.push((tok, line));
                    i = ni;
                } else {
                    return Err(ParseError {
                        line,
                        message: "unexpected `-`".into(),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let (tok, ni) = lex_number(src, i, line)?;
                toks.push((tok, line));
                i = ni;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' || ch == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push((Tok::Ident(src[start..i].to_string()), line));
            }
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    toks.push((Tok::Eof, line));
    Ok(toks)
}

fn lex_number(src: &str, start: usize, line: u32) -> PResult<(Tok, usize)> {
    let bytes = src.as_bytes();
    let mut i = start;
    if bytes[i] == b'-' {
        i += 1;
    }
    let mut is_float = false;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &src[start..i];
    let tok = if is_float {
        Tok::Float(text.parse().map_err(|_| ParseError {
            line,
            message: format!("bad float literal `{text}`"),
        })?)
    } else {
        Tok::Int(text.parse().map_err(|_| ParseError {
            line,
            message: format!("bad integer literal `{text}`"),
        })?)
    };
    Ok((tok, i))
}

struct Parser {
    toks: Vec<(Tok, u32)>,
    pos: usize,
    prog: Program,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            line: self.line(),
            message: msg.into(),
        })
    }

    fn expect(&mut self, t: Tok) -> PResult<()> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {t}, found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => {
                self.pos -= 1;
                self.err(format!("expected identifier, found {other}"))
            }
        }
    }

    fn int(&mut self) -> PResult<i64> {
        match self.bump() {
            Tok::Int(v) => Ok(v),
            other => {
                self.pos -= 1;
                self.err(format!("expected integer, found {other}"))
            }
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    // ---- types -----------------------------------------------------------

    fn parse_type(&mut self) -> PResult<TypeId> {
        match self.bump() {
            Tok::Ident(name) => {
                if name == "void" {
                    return Ok(self.prog.types.void());
                }
                if name == "fnptr" {
                    return Ok(self.prog.types.func_ptr());
                }
                if let Some(k) = ScalarKind::from_name(&name) {
                    return Ok(self.prog.types.scalar(k));
                }
                if name == "ptr" {
                    self.expect(Tok::LAngle)?;
                    let inner = self.parse_type()?;
                    self.expect(Tok::RAngle)?;
                    return Ok(self.prog.types.ptr(inner));
                }
                match self.prog.types.record_by_name(&name) {
                    Some(rid) => Ok(self
                        .prog
                        .types
                        .record_type_id(rid)
                        .expect("registered record has a type id")),
                    None => self.err(format!("unknown type `{name}`")),
                }
            }
            Tok::LBrack => {
                let elem = self.parse_type()?;
                self.expect(Tok::Semi)?;
                let n = self.int()?;
                self.expect(Tok::RBrack)?;
                if n < 0 {
                    return self.err("negative array length");
                }
                Ok(self.prog.types.array(elem, n as u64))
            }
            other => {
                self.pos -= 1;
                self.err(format!("expected type, found {other}"))
            }
        }
    }

    // ---- operands ---------------------------------------------------------

    fn reg_of(name: &str) -> Option<Reg> {
        let rest = name.strip_prefix('r')?;
        if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        rest.parse().ok().map(Reg)
    }

    fn block_of(name: &str) -> Option<u32> {
        let rest = name.strip_prefix("bb")?;
        if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        rest.parse().ok()
    }

    fn parse_operand(&mut self) -> PResult<Operand> {
        match self.bump() {
            Tok::Int(v) => Ok(Operand::Const(Const::Int(v))),
            Tok::Float(v) => Ok(Operand::Const(Const::Float(v))),
            Tok::Ident(s) if s == "null" => Ok(Operand::Const(Const::Null)),
            Tok::Ident(s) => match Self::reg_of(&s) {
                Some(r) => Ok(Operand::Reg(r)),
                None => {
                    self.pos -= 1;
                    self.err(format!("expected operand, found `{s}`"))
                }
            },
            other => {
                self.pos -= 1;
                self.err(format!("expected operand, found {other}"))
            }
        }
    }

    fn parse_block_ref(&mut self) -> PResult<BlockId> {
        let name = self.ident()?;
        match Self::block_of(&name) {
            Some(n) => Ok(BlockId(n)),
            None => self.err(format!("expected block label, found `{name}`")),
        }
    }

    // ---- top level --------------------------------------------------------

    fn skip_balanced_braces(&mut self) -> PResult<()> {
        self.expect(Tok::LBrace)?;
        let mut depth = 1;
        loop {
            match self.bump() {
                Tok::LBrace => depth += 1,
                Tok::RBrace => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Tok::Eof => return self.err("unbalanced `{`"),
                _ => {}
            }
        }
    }
}

/// Parse a textual IR program.
///
/// # Errors
///
/// Returns a [`ParseError`] with line information on the first syntax or
/// reference error.
pub fn parse(src: &str) -> PResult<Program> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        prog: Program::new(),
    };

    // Pass A: register record names (forward references).
    {
        let mut i = 0;
        while i < p.toks.len() {
            if let (Tok::Ident(s), _) = &p.toks[i] {
                if s == "record" {
                    if let (Tok::Ident(name), line) = &p.toks[i + 1] {
                        if p.prog.types.record_by_name(name).is_some() {
                            return Err(ParseError {
                                line: *line,
                                message: format!("duplicate record `{name}`"),
                            });
                        }
                        p.prog.types.add_record(RecordType {
                            name: name.clone(),
                            fields: vec![],
                        });
                    }
                }
            }
            i += 1;
        }
    }

    // Pass B: records, globals, signatures; remember body spans.
    let mut bodies: Vec<(FuncId, usize)> = Vec::new(); // (func, token pos of '{')
    loop {
        match p.peek().clone() {
            Tok::Eof => break,
            Tok::Ident(kw) if kw == "record" => {
                p.bump();
                let name = p.ident()?;
                let rid = p
                    .prog
                    .types
                    .record_by_name(&name)
                    .expect("pre-registered in pass A");
                p.expect(Tok::LBrace)?;
                let mut fields = Vec::new();
                if *p.peek() != Tok::RBrace {
                    loop {
                        let fname = p.ident()?;
                        p.expect(Tok::Colon)?;
                        let fty = p.parse_type()?;
                        let bw = if *p.peek() == Tok::Colon {
                            p.bump();
                            Some(p.int()? as u8)
                        } else {
                            None
                        };
                        fields.push(Field {
                            name: fname,
                            ty: fty,
                            bit_width: bw,
                        });
                        if *p.peek() == Tok::Comma {
                            p.bump();
                        } else {
                            break;
                        }
                    }
                }
                p.expect(Tok::RBrace)?;
                p.prog
                    .types
                    .replace_record(rid, RecordType { name, fields });
            }
            Tok::Ident(kw) if kw == "global" => {
                p.bump();
                let name = p.ident()?;
                p.expect(Tok::Colon)?;
                let ty = p.parse_type()?;
                if p.prog.global_by_name(&name).is_some() {
                    return p.err(format!("duplicate global `{name}`"));
                }
                p.prog.add_global(GlobalVar { name, ty });
            }
            Tok::Ident(kw) if kw == "extern" || kw == "libc" || kw == "func" => {
                let kind = match kw.as_str() {
                    "extern" => {
                        p.bump();
                        if !p.eat_kw("func") {
                            return p.err("expected `func` after `extern`");
                        }
                        FuncKind::External
                    }
                    "libc" => {
                        p.bump();
                        if !p.eat_kw("func") {
                            return p.err("expected `func` after `libc`");
                        }
                        FuncKind::Libc
                    }
                    _ => {
                        p.bump();
                        FuncKind::Defined
                    }
                };
                let name = p.ident()?;
                p.expect(Tok::LParen)?;
                let mut params = Vec::new();
                if *p.peek() != Tok::RParen {
                    loop {
                        params.push(p.parse_type()?);
                        if *p.peek() == Tok::Comma {
                            p.bump();
                        } else {
                            break;
                        }
                    }
                }
                p.expect(Tok::RParen)?;
                p.expect(Tok::Arrow)?;
                let ret = p.parse_type()?;
                if p.prog.func_by_name(&name).is_some() {
                    return p.err(format!("duplicate function `{name}`"));
                }
                let param_regs: Vec<(Reg, TypeId)> = params
                    .iter()
                    .enumerate()
                    .map(|(i, t)| (Reg(i as u32), *t))
                    .collect();
                let nparams = param_regs.len() as u32;
                let fid = p.prog.add_func(Function {
                    name,
                    params: param_regs,
                    ret,
                    kind,
                    blocks: vec![],
                    num_regs: nparams,
                    unit: 0,
                });
                if kind == FuncKind::Defined {
                    bodies.push((fid, p.pos));
                    p.skip_balanced_braces()?;
                }
            }
            other => return p.err(format!("expected item, found {other}")),
        }
    }

    // Pass C: function bodies.
    for (fid, brace_pos) in bodies {
        p.pos = brace_pos;
        parse_body(&mut p, fid)?;
    }

    Ok(p.prog)
}

fn parse_body(p: &mut Parser, fid: FuncId) -> PResult<()> {
    p.expect(Tok::LBrace)?;
    let mut blocks: Vec<BasicBlock> = Vec::new();
    let mut label_map: HashMap<u32, usize> = HashMap::new(); // label number -> index
    let mut max_reg: u32 = p.prog.func(fid).num_regs;
    let mut max_label_ref: Vec<(u32, u32)> = Vec::new(); // (label, line) referenced

    let mut cur: Option<usize> = None;
    loop {
        match p.peek().clone() {
            Tok::RBrace => {
                p.bump();
                break;
            }
            Tok::Ident(s) => {
                // label?
                if let Some(n) = Parser::block_of(&s) {
                    if p.toks[p.pos + 1].0 == Tok::Colon {
                        p.bump();
                        p.bump();
                        if label_map.contains_key(&n) {
                            return p.err(format!("duplicate label bb{n}"));
                        }
                        if n as usize != blocks.len() {
                            return p.err(format!(
                                "label bb{n} out of order (expected bb{})",
                                blocks.len()
                            ));
                        }
                        label_map.insert(n, blocks.len());
                        blocks.push(BasicBlock::default());
                        cur = Some(blocks.len() - 1);
                        continue;
                    }
                }
                let Some(cb) = cur else {
                    return p.err("instruction before first block label");
                };
                let line = p.line();
                let ins = parse_instr(p)?;
                if let Some(Reg(r)) = ins.def() {
                    max_reg = max_reg.max(r + 1);
                }
                for u in ins.uses() {
                    if let Operand::Reg(Reg(r)) = u {
                        max_reg = max_reg.max(r + 1);
                    }
                }
                for s in ins.successors() {
                    max_label_ref.push((s.0, line));
                }
                blocks[cb].instrs.push(ins);
            }
            other => return p.err(format!("expected instruction or `}}`, found {other}")),
        }
    }

    for (lbl, line) in max_label_ref {
        if !label_map.contains_key(&lbl) {
            return Err(ParseError {
                line,
                message: format!("jump to undefined label bb{lbl}"),
            });
        }
    }
    if blocks.is_empty() {
        return p.err(format!(
            "function `{}` has an empty body",
            p.prog.func(fid).name
        ));
    }

    let f = p.prog.func_mut(fid);
    f.blocks = blocks;
    f.num_regs = max_reg;
    Ok(())
}

fn parse_instr(p: &mut Parser) -> PResult<Instr> {
    let first = p.ident()?;

    // Instructions with a destination: `rN = ...`
    if let Some(dst) = Parser::reg_of(&first) {
        if *p.peek() == Tok::Eq {
            p.bump();
            return parse_rhs(p, dst);
        }
        return p.err("expected `=` after register");
    }

    match first.as_str() {
        "store" => {
            let value = p.parse_operand()?;
            p.expect(Tok::Comma)?;
            let addr = p.parse_operand()?;
            p.expect(Tok::Colon)?;
            let ty = p.parse_type()?;
            Ok(Instr::Store { addr, value, ty })
        }
        "gstore" => {
            let value = p.parse_operand()?;
            p.expect(Tok::Comma)?;
            let gname = p.ident()?;
            let global = p.prog.global_by_name(&gname).ok_or_else(|| ParseError {
                line: p.line(),
                message: format!("unknown global `{gname}`"),
            })?;
            Ok(Instr::StoreGlobal { global, value })
        }
        "free" => {
            let ptr = p.parse_operand()?;
            Ok(Instr::Free { ptr })
        }
        "memcpy" => {
            let dst = p.parse_operand()?;
            p.expect(Tok::Comma)?;
            let src = p.parse_operand()?;
            p.expect(Tok::Comma)?;
            let bytes = p.parse_operand()?;
            Ok(Instr::Memcpy { dst, src, bytes })
        }
        "memset" => {
            let dst = p.parse_operand()?;
            p.expect(Tok::Comma)?;
            let val = p.parse_operand()?;
            p.expect(Tok::Comma)?;
            let bytes = p.parse_operand()?;
            Ok(Instr::Memset { dst, val, bytes })
        }
        "call" => {
            let (callee, args) = parse_call_tail(p)?;
            Ok(Instr::Call {
                dst: None,
                callee,
                args,
            })
        }
        "icall" => {
            let (target, args, arg_types) = parse_icall_tail(p)?;
            Ok(Instr::CallIndirect {
                dst: None,
                target,
                args,
                arg_types,
            })
        }
        "jump" => {
            let target = p.parse_block_ref()?;
            Ok(Instr::Jump { target })
        }
        "br" => {
            let cond = p.parse_operand()?;
            p.expect(Tok::Comma)?;
            let then_bb = p.parse_block_ref()?;
            p.expect(Tok::Comma)?;
            let else_bb = p.parse_block_ref()?;
            Ok(Instr::Branch {
                cond,
                then_bb,
                else_bb,
            })
        }
        "ret" => {
            // `ret` may be followed by an operand or by the next
            // label/instruction/`}` — look ahead.
            let value = match p.peek() {
                Tok::Int(_) | Tok::Float(_) => Some(p.parse_operand()?),
                Tok::Ident(s) => {
                    let is_operand = s == "null"
                        || (Parser::reg_of(s).is_some() && p.toks[p.pos + 1].0 != Tok::Eq);
                    if is_operand {
                        Some(p.parse_operand()?)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            Ok(Instr::Return { value })
        }
        other => p.err(format!("unknown instruction `{other}`")),
    }
}

fn parse_rhs(p: &mut Parser, dst: Reg) -> PResult<Instr> {
    // plain operand (Assign) or mnemonic
    match p.peek().clone() {
        Tok::Int(_) | Tok::Float(_) => {
            let src = p.parse_operand()?;
            Ok(Instr::Assign { dst, src })
        }
        Tok::Ident(name) => {
            if name == "null" || Parser::reg_of(&name).is_some() {
                let src = p.parse_operand()?;
                return Ok(Instr::Assign { dst, src });
            }
            p.bump();
            if let Some(op) = BinOp::from_name(&name) {
                let lhs = p.parse_operand()?;
                p.expect(Tok::Comma)?;
                let rhs = p.parse_operand()?;
                return Ok(Instr::Bin { dst, op, lhs, rhs });
            }
            if let Some(rest) = name.strip_prefix("cmp.") {
                let op = CmpOp::from_name(rest).ok_or_else(|| ParseError {
                    line: p.line(),
                    message: format!("unknown comparison `{rest}`"),
                })?;
                let lhs = p.parse_operand()?;
                p.expect(Tok::Comma)?;
                let rhs = p.parse_operand()?;
                return Ok(Instr::Cmp { dst, op, lhs, rhs });
            }
            match name.as_str() {
                "cast" => {
                    let src = p.parse_operand()?;
                    p.expect(Tok::Colon)?;
                    let from = p.parse_type()?;
                    p.expect(Tok::Arrow)?;
                    let to = p.parse_type()?;
                    Ok(Instr::Cast { dst, src, from, to })
                }
                "fieldaddr" => {
                    let base = p.parse_operand()?;
                    p.expect(Tok::Comma)?;
                    let path = p.ident()?; // "record.field"
                    let Some((rname, fname)) = path.split_once('.') else {
                        return p.err(format!("expected record.field, found `{path}`"));
                    };
                    let rid = p
                        .prog
                        .types
                        .record_by_name(rname)
                        .ok_or_else(|| ParseError {
                            line: p.line(),
                            message: format!("unknown record `{rname}`"),
                        })?;
                    let field =
                        p.prog
                            .types
                            .record(rid)
                            .field_index(fname)
                            .ok_or_else(|| ParseError {
                                line: p.line(),
                                message: format!("unknown field `{rname}.{fname}`"),
                            })?;
                    Ok(Instr::FieldAddr {
                        dst,
                        base,
                        record: rid,
                        field: field as u32,
                    })
                }
                "indexaddr" => {
                    let base = p.parse_operand()?;
                    p.expect(Tok::Comma)?;
                    let elem = p.parse_type()?;
                    p.expect(Tok::Comma)?;
                    let index = p.parse_operand()?;
                    Ok(Instr::IndexAddr {
                        dst,
                        base,
                        elem,
                        index,
                    })
                }
                "load" => {
                    let addr = p.parse_operand()?;
                    p.expect(Tok::Colon)?;
                    let ty = p.parse_type()?;
                    Ok(Instr::Load { dst, addr, ty })
                }
                "gload" => {
                    let gname = p.ident()?;
                    let global = p.prog.global_by_name(&gname).ok_or_else(|| ParseError {
                        line: p.line(),
                        message: format!("unknown global `{gname}`"),
                    })?;
                    Ok(Instr::LoadGlobal { dst, global })
                }
                "gaddr" => {
                    let gname = p.ident()?;
                    let global = p.prog.global_by_name(&gname).ok_or_else(|| ParseError {
                        line: p.line(),
                        message: format!("unknown global `{gname}`"),
                    })?;
                    Ok(Instr::AddrOfGlobal { dst, global })
                }
                "alloc" | "zalloc" => {
                    let elem = p.parse_type()?;
                    p.expect(Tok::Comma)?;
                    let count = p.parse_operand()?;
                    Ok(Instr::Alloc {
                        dst,
                        elem,
                        count,
                        zeroed: name == "zalloc",
                    })
                }
                "realloc" => {
                    let ptr = p.parse_operand()?;
                    p.expect(Tok::Comma)?;
                    let elem = p.parse_type()?;
                    p.expect(Tok::Comma)?;
                    let count = p.parse_operand()?;
                    Ok(Instr::Realloc {
                        dst,
                        ptr,
                        elem,
                        count,
                    })
                }
                "call" => {
                    let (callee, args) = parse_call_tail(p)?;
                    Ok(Instr::Call {
                        dst: Some(dst),
                        callee,
                        args,
                    })
                }
                "icall" => {
                    let (target, args, arg_types) = parse_icall_tail(p)?;
                    Ok(Instr::CallIndirect {
                        dst: Some(dst),
                        target,
                        args,
                        arg_types,
                    })
                }
                "fnaddr" => {
                    let fname = p.ident()?;
                    let func = p.prog.func_by_name(&fname).ok_or_else(|| ParseError {
                        line: p.line(),
                        message: format!("unknown function `{fname}`"),
                    })?;
                    Ok(Instr::FuncAddr { dst, func })
                }
                other => p.err(format!("unknown instruction `{other}`")),
            }
        }
        other => p.err(format!("expected right-hand side, found {other}")),
    }
}

fn parse_call_tail(p: &mut Parser) -> PResult<(FuncId, Vec<Operand>)> {
    let fname = p.ident()?;
    let callee = p.prog.func_by_name(&fname).ok_or_else(|| ParseError {
        line: p.line(),
        message: format!("unknown function `{fname}`"),
    })?;
    p.expect(Tok::LParen)?;
    let mut args = Vec::new();
    if *p.peek() != Tok::RParen {
        loop {
            args.push(p.parse_operand()?);
            if *p.peek() == Tok::Comma {
                p.bump();
            } else {
                break;
            }
        }
    }
    p.expect(Tok::RParen)?;
    Ok((callee, args))
}

fn parse_icall_tail(p: &mut Parser) -> PResult<(Operand, Vec<Operand>, Vec<TypeId>)> {
    let target = p.parse_operand()?;
    p.expect(Tok::LParen)?;
    let mut args = Vec::new();
    if *p.peek() != Tok::RParen {
        loop {
            args.push(p.parse_operand()?);
            if *p.peek() == Tok::Comma {
                p.bump();
            } else {
                break;
            }
        }
    }
    p.expect(Tok::RParen)?;
    p.expect(Tok::Colon)?;
    p.expect(Tok::LParen)?;
    let mut tys = Vec::new();
    if *p.peek() != Tok::RParen {
        loop {
            tys.push(p.parse_type()?);
            if *p.peek() == Tok::Comma {
                p.bump();
            } else {
                break;
            }
        }
    }
    p.expect(Tok::RParen)?;
    Ok((target, args, tys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_program;
    use crate::verify::assert_valid;

    const SMALL: &str = r#"
record node { v: i64, next: ptr<node>, flags: u32:3 }

global P: ptr<node>

libc func fwrite(ptr<u8>) -> i64
extern func mystery(ptr<node>) -> void

func main() -> i64 {
bb0:
  r0 = 100
  r1 = alloc node, r0
  gstore r1, P
  jump bb1
bb1:
  r2 = cmp.lt r0, 200
  br r2, bb2, bb3
bb2:
  r3 = fieldaddr r1, node.v
  store 5, r3 : i64
  r4 = load r3 : i64
  r5 = add r4, 1
  jump bb1
bb3:
  ret r0
}
"#;

    #[test]
    fn parses_small_program() {
        let p = parse(SMALL).expect("parse ok");
        assert_eq!(p.types.num_records(), 1);
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.funcs.len(), 3);
        let main = p.main().expect("main exists");
        assert_eq!(p.func(main).blocks.len(), 4);
        assert_valid(&p);
        let rid = p.types.record_by_name("node").expect("record");
        assert_eq!(p.types.record(rid).fields[2].bit_width, Some(3));
    }

    #[test]
    fn roundtrip_print_parse() {
        let p1 = parse(SMALL).expect("parse ok");
        let text1 = print_program(&p1);
        let p2 = parse(&text1).expect("reparse ok");
        let text2 = print_program(&p2);
        assert_eq!(text1, text2);
    }

    #[test]
    fn parses_forward_record_reference() {
        let src = r#"
record a { b: ptr<b> }
record b { a: ptr<a> }
"#;
        let p = parse(src).expect("parse ok");
        assert_eq!(p.types.num_records(), 2);
    }

    #[test]
    fn parses_all_instructions() {
        let src = r#"
record s { x: i64, y: f64 }
global G: i64
extern func ext(i64) -> i64
func helper(i64) -> i64 {
bb0:
  ret r0
}
func main() -> i64 {
bb0:
  r0 = 7
  r1 = 1.5
  r2 = null
  r3 = r0
  r4 = add r0, 1
  r5 = cmp.ge r4, r0
  r6 = alloc s, 16
  r7 = zalloc s, 16
  r8 = cast r6 : ptr<s> -> ptr<u8>
  r9 = fieldaddr r6, s.y
  r10 = indexaddr r6, s, 3
  r11 = load r9 : f64
  store r1, r9 : f64
  r12 = gload G
  gstore r0, G
  r13 = gaddr G
  free r7
  r14 = realloc r6, s, 32
  memcpy r6, r7, 64
  memset r6, 0, 64
  r15 = call helper(r0)
  call helper(1)
  r16 = fnaddr helper
  r17 = icall r16(r0) : (i64)
  icall r16(2) : (i64)
  r18 = call ext(r0)
  ret r18
}
"#;
        let p = parse(src).expect("parse ok");
        assert_valid(&p);
        let t1 = print_program(&p);
        let p2 = parse(&t1).expect("reparse");
        assert_eq!(t1, print_program(&p2));
    }

    #[test]
    fn void_ret_and_negative_ints() {
        let src = r#"
func f() -> void {
bb0:
  r0 = -42
  ret
}
"#;
        let p = parse(src).expect("parse ok");
        let f = p.func_by_name("f").expect("f");
        let ins = &p.func(f).blocks[0].instrs[0];
        assert_eq!(
            *ins,
            Instr::Assign {
                dst: Reg(0),
                src: Operand::int(-42)
            }
        );
    }

    #[test]
    fn error_unknown_type() {
        let err = parse("global G: banana").expect_err("should fail");
        assert!(err.message.contains("unknown type"));
    }

    #[test]
    fn error_unknown_function() {
        let src = "func main() -> void {\nbb0:\n  call nope()\n  ret\n}\n";
        let err = parse(src).expect_err("should fail");
        assert!(err.message.contains("unknown function"));
        assert_eq!(err.line, 3);
    }

    #[test]
    fn error_undefined_label() {
        let src = "func main() -> void {\nbb0:\n  jump bb7\n}\n";
        let err = parse(src).expect_err("should fail");
        assert!(err.message.contains("undefined label"));
    }

    #[test]
    fn error_duplicate_record() {
        let err = parse("record a { }\nrecord a { }").expect_err("should fail");
        assert!(err.message.contains("duplicate record"));
    }

    #[test]
    fn error_out_of_order_labels() {
        let src = "func main() -> void {\nbb1:\n  ret\n}\n";
        let err = parse(src).expect_err("should fail");
        assert!(err.message.contains("out of order"));
    }

    #[test]
    fn comments_are_skipped() {
        let src = "// a comment\nfunc f() -> void { // trailing\nbb0:\n  ret\n}\n";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn array_types() {
        let src = "record r { data: [i32; 8] }\n";
        let p = parse(src).expect("parse ok");
        let rid = p.types.record_by_name("r").expect("r");
        assert_eq!(p.types.layout_of(rid).size, 32);
    }

    #[test]
    fn float_literals() {
        let src = "func f() -> f64 {\nbb0:\n  r0 = 2.5\n  r1 = 1e3\n  ret r0\n}\n";
        let p = parse(src).expect("parse ok");
        let f = p.func_by_name("f").expect("f");
        assert!(matches!(
            p.func(f).blocks[0].instrs[1],
            Instr::Assign {
                src: Operand::Const(Const::Float(v)),
                ..
            } if v == 1000.0
        ));
    }

    #[test]
    fn num_regs_accounts_for_params_and_uses() {
        let src = "func f(i64, i64) -> i64 {\nbb0:\n  r5 = add r0, r1\n  ret r5\n}\n";
        let p = parse(src).expect("parse ok");
        let f = p.func_by_name("f").expect("f");
        assert_eq!(p.func(f).num_regs, 6);
    }
}
