//! Dominator tree computation (Cooper–Harvey–Kennedy iterative algorithm).
//!
//! Used by loop recognition and by the verifier's reachability checks.

use crate::instr::BlockId;
use crate::module::Function;

/// Dominator information for one function's CFG.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block; `idom[entry] == entry`;
    /// unreachable blocks have `None`.
    idom: Vec<Option<BlockId>>,
    /// Reverse postorder of reachable blocks.
    rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (usize::MAX if unreachable).
    rpo_pos: Vec<usize>,
}

impl DomTree {
    /// Compute dominators for `f`'s CFG.
    pub fn compute(f: &Function) -> Self {
        let n = f.blocks.len();
        let preds = f.predecessors();

        // Post-order DFS from the entry.
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Iterative DFS with explicit stack of (block, next-succ-index).
        let mut stack: Vec<(BlockId, usize)> = Vec::new();
        if n > 0 {
            visited[0] = true;
            stack.push((BlockId(0), 0));
        }
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let succs = f.block(b).successors();
            if *i < succs.len() {
                let s = succs[*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 {
            return DomTree { idom, rpo, rpo_pos };
        }
        idom[0] = Some(BlockId(0));

        let intersect = |idom: &[Option<BlockId>], rpo_pos: &[usize], a: BlockId, b: BlockId| {
            let mut x = a;
            let mut y = b;
            while x != y {
                while rpo_pos[x.index()] > rpo_pos[y.index()] {
                    x = idom[x.index()].expect("processed block has idom");
                }
                while rpo_pos[y.index()] > rpo_pos[x.index()] {
                    y = idom[y.index()].expect("processed block has idom");
                }
            }
            x
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_pos, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        DomTree { idom, rpo, rpo_pos }
    }

    /// The immediate dominator of `b` (`None` for the entry or
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        let d = self.idom[b.index()]?;
        if d == b {
            None
        } else {
            Some(d)
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_pos[b.index()] != usize::MAX
    }

    /// Reverse postorder over reachable blocks.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::{CmpOp, Operand};
    use crate::types::ScalarKind;

    fn diamond() -> (crate::module::Program, crate::instr::FuncId) {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("f", vec![i64t], i64t);
        pb.define(f, |fb| {
            let c = fb.cmp(CmpOp::Gt, fb.param(0).into(), Operand::int(0));
            let r = fb.fresh();
            fb.if_then_else(
                c.into(),
                |fb| fb.assign(r, Operand::int(1)),
                |fb| fb.assign(r, Operand::int(2)),
            );
            fb.ret(Some(r.into()));
        });
        (pb.finish(), f)
    }

    #[test]
    fn diamond_dominators() {
        let (p, f) = diamond();
        let dt = DomTree::compute(p.func(f));
        // blocks: 0 entry, 1 then, 2 else, 3 join
        assert_eq!(dt.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(3)), Some(BlockId(0)));
        assert!(dt.dominates(BlockId(0), BlockId(3)));
        assert!(!dt.dominates(BlockId(1), BlockId(3)));
        assert!(dt.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn loop_dominators() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("f", vec![], i64t);
        pb.define(f, |fb| {
            fb.count_loop(Operand::int(10), |fb, _| {
                fb.iconst(0);
            });
            fb.ret(Some(Operand::int(0)));
        });
        let p = pb.finish();
        let dt = DomTree::compute(p.func(f));
        // 0 entry -> 1 head -> {2 body, 3 exit}; body -> head
        assert_eq!(dt.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dt.idom(BlockId(3)), Some(BlockId(1)));
        assert!(dt.dominates(BlockId(1), BlockId(2)));
    }

    #[test]
    fn unreachable_block() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("f", vec![], i64t);
        pb.define(f, |fb| {
            fb.ret(Some(Operand::int(0)));
            let dead = fb.new_block();
            fb.switch_to(dead);
            fb.ret(Some(Operand::int(1)));
        });
        let p = pb.finish();
        let dt = DomTree::compute(p.func(f));
        assert!(dt.is_reachable(BlockId(0)));
        assert!(!dt.is_reachable(BlockId(1)));
        assert!(!dt.dominates(BlockId(0), BlockId(1)));
    }

    #[test]
    fn rpo_starts_at_entry() {
        let (p, f) = diamond();
        let dt = DomTree::compute(p.func(f));
        assert_eq!(dt.rpo()[0], BlockId(0));
        assert_eq!(dt.rpo().len(), 4);
    }
}
