//! Instructions, operands and constants.
//!
//! The IR is a register machine (not SSA): each function owns a flat space
//! of virtual registers written and read by instructions. Basic blocks end
//! in exactly one terminator. Memory is accessed through typed pointers;
//! structure fields are addressed with the explicit [`Instr::FieldAddr`]
//! instruction, which is what the structure-layout analyses key on.

use crate::types::{RecordId, TypeId};
use std::fmt;

/// A virtual register, local to a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Handle to a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block's index into `Function::blocks`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Handle to a function within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl FuncId {
    /// The function's index into `Program::funcs`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// Handle to a global variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

impl GlobalId {
    /// The global's index into `Program::globals`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A stable address of an instruction: function, block, index-in-block.
///
/// Profile feedback and PMU samples are keyed by `InstrRef` so they can be
/// matched back to the IR (the paper's CFG-matching step).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstrRef {
    /// The owning function.
    pub func: FuncId,
    /// The owning block.
    pub block: BlockId,
    /// Index within the block's instruction list.
    pub index: u32,
}

impl fmt::Display for InstrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.func, self.block, self.index)
    }
}

/// Compile-time constant values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Const {
    /// Integer constant (any integer scalar kind).
    Int(i64),
    /// Floating constant.
    Float(f64),
    /// The null pointer.
    Null,
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(v) => write!(f, "{v}"),
            Const::Float(v) => write!(f, "{v:?}"),
            Const::Null => write!(f, "null"),
        }
    }
}

/// An instruction operand: a register or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// Read a virtual register.
    Reg(Reg),
    /// An immediate constant.
    Const(Const),
}

impl Operand {
    /// Integer immediate shorthand.
    pub fn int(v: i64) -> Self {
        Operand::Const(Const::Int(v))
    }

    /// Float immediate shorthand.
    pub fn float(v: f64) -> Self {
        Operand::Const(Const::Float(v))
    }

    /// Null-pointer immediate shorthand.
    pub fn null() -> Self {
        Operand::Const(Const::Null)
    }

    /// The register read by this operand, if any.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Const(_) => None,
        }
    }

    /// The constant if this operand is an immediate integer.
    pub fn as_const_int(self) -> Option<i64> {
        match self {
            Operand::Const(Const::Int(v)) => Some(v),
            _ => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::int(v)
    }
}

impl From<f64> for Operand {
    fn from(v: f64) -> Self {
        Operand::float(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Binary arithmetic / bitwise operators. Operate on integers or floats
/// depending on runtime operand types; bitwise/shift ops are integer-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder (integer only).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
}

impl BinOp {
    /// Parser/printer mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }

    /// Parse from mnemonic.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "div" => BinOp::Div,
            "rem" => BinOp::Rem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "shr" => BinOp::Shr,
            _ => return None,
        })
    }
}

/// Comparison operators; result is an integer 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CmpOp {
    /// Parser/printer mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// Parse from mnemonic.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            _ => return None,
        })
    }
}

/// The instruction set.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = src` — copy a value.
    Assign {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = op lhs, rhs` — binary arithmetic.
    Bin {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = cmp.op lhs, rhs` — comparison producing 0/1.
    Cmp {
        /// Destination register.
        dst: Reg,
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = cast src : from -> to` — value or pointer cast.
    ///
    /// Pointer casts between unrelated record types are what the CSTT/CSTF
    /// legality tests fire on.
    Cast {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
        /// Declared source type.
        from: TypeId,
        /// Declared destination type.
        to: TypeId,
    },
    /// `dst = fieldaddr base, record.field` — address of a structure field.
    FieldAddr {
        /// Destination register (a pointer to the field).
        dst: Reg,
        /// Base pointer (must point at `record`).
        base: Operand,
        /// The record type being accessed.
        record: RecordId,
        /// Field index within the record.
        field: u32,
    },
    /// `dst = indexaddr base, index : elem` — address of `base[index]`
    /// where `base` points at elements of type `elem`.
    IndexAddr {
        /// Destination register.
        dst: Reg,
        /// Base pointer.
        base: Operand,
        /// Element type.
        elem: TypeId,
        /// Element index.
        index: Operand,
    },
    /// `dst = load addr : ty` — load a scalar/pointer value.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address to load from.
        addr: Operand,
        /// Type of the loaded value.
        ty: TypeId,
    },
    /// `store value, addr : ty` — store a scalar/pointer value.
    Store {
        /// Address to store to.
        addr: Operand,
        /// Value to store.
        value: Operand,
        /// Type of the stored value.
        ty: TypeId,
    },
    /// `dst = gload g` — read a global variable's value.
    LoadGlobal {
        /// Destination register.
        dst: Reg,
        /// The global to read.
        global: GlobalId,
    },
    /// `gstore value, g` — write a global variable.
    StoreGlobal {
        /// The global to write.
        global: GlobalId,
        /// Value to write.
        value: Operand,
    },
    /// `dst = gaddr g` — address of a global variable (for globals holding
    /// aggregates accessed by pointer).
    AddrOfGlobal {
        /// Destination register.
        dst: Reg,
        /// The global whose address is taken.
        global: GlobalId,
    },
    /// `dst = alloc elem, count` (malloc) or `zalloc` (calloc) — allocate
    /// an array of `count` elements of type `elem` on the heap.
    Alloc {
        /// Destination register (pointer to the first element).
        dst: Reg,
        /// Element type.
        elem: TypeId,
        /// Number of elements.
        count: Operand,
        /// Whether the memory is zeroed (calloc).
        zeroed: bool,
    },
    /// `free ptr` — release a heap allocation.
    Free {
        /// Pointer previously returned by `Alloc`/`Realloc`.
        ptr: Operand,
    },
    /// `dst = realloc ptr, elem, count` — grow/shrink an allocation.
    Realloc {
        /// Destination register.
        dst: Reg,
        /// Old pointer.
        ptr: Operand,
        /// Element type.
        elem: TypeId,
        /// New element count.
        count: Operand,
    },
    /// `memcpy dst_addr, src_addr, bytes` — memory streaming copy (the
    /// paper's MSET legality condition fires on these).
    Memcpy {
        /// Destination address.
        dst: Operand,
        /// Source address.
        src: Operand,
        /// Byte count.
        bytes: Operand,
    },
    /// `memset dst_addr, val, bytes` — memory streaming fill.
    Memset {
        /// Destination address.
        dst: Operand,
        /// Fill byte value.
        val: Operand,
        /// Byte count.
        bytes: Operand,
    },
    /// `dst = call f(args)` — direct call.
    Call {
        /// Optional destination register for the return value.
        dst: Option<Reg>,
        /// Callee.
        callee: FuncId,
        /// Argument operands.
        args: Vec<Operand>,
    },
    /// `dst = icall target(args)` — indirect call through a function
    /// pointer (the paper's IND legality condition).
    CallIndirect {
        /// Optional destination register.
        dst: Option<Reg>,
        /// Function-pointer operand.
        target: Operand,
        /// Argument operands.
        args: Vec<Operand>,
        /// Declared argument types (for escape analysis).
        arg_types: Vec<TypeId>,
    },
    /// `dst = fnaddr f` — materialize a function pointer.
    FuncAddr {
        /// Destination register.
        dst: Reg,
        /// The function whose address is taken.
        func: FuncId,
    },
    /// Terminator: unconditional jump.
    Jump {
        /// Target block.
        target: BlockId,
    },
    /// Terminator: conditional branch (`cond != 0` → `then_bb`).
    Branch {
        /// Condition operand.
        cond: Operand,
        /// Taken target.
        then_bb: BlockId,
        /// Fallthrough target.
        else_bb: BlockId,
    },
    /// Terminator: return from the function.
    Return {
        /// Optional return value.
        value: Option<Operand>,
    },
}

impl Instr {
    /// Whether this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Jump { .. } | Instr::Branch { .. } | Instr::Return { .. }
        )
    }

    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Instr::Assign { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Cmp { dst, .. }
            | Instr::Cast { dst, .. }
            | Instr::FieldAddr { dst, .. }
            | Instr::IndexAddr { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::LoadGlobal { dst, .. }
            | Instr::AddrOfGlobal { dst, .. }
            | Instr::Alloc { dst, .. }
            | Instr::Realloc { dst, .. }
            | Instr::FuncAddr { dst, .. } => Some(*dst),
            Instr::Call { dst, .. } | Instr::CallIndirect { dst, .. } => *dst,
            _ => None,
        }
    }

    /// All operands read by this instruction.
    pub fn uses(&self) -> Vec<Operand> {
        match self {
            Instr::Assign { src, .. } => vec![*src],
            Instr::Bin { lhs, rhs, .. } | Instr::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Instr::Cast { src, .. } => vec![*src],
            Instr::FieldAddr { base, .. } => vec![*base],
            Instr::IndexAddr { base, index, .. } => vec![*base, *index],
            Instr::Load { addr, .. } => vec![*addr],
            Instr::Store { addr, value, .. } => vec![*addr, *value],
            Instr::LoadGlobal { .. } | Instr::AddrOfGlobal { .. } | Instr::FuncAddr { .. } => {
                vec![]
            }
            Instr::StoreGlobal { value, .. } => vec![*value],
            Instr::Alloc { count, .. } => vec![*count],
            Instr::Free { ptr } => vec![*ptr],
            Instr::Realloc { ptr, count, .. } => vec![*ptr, *count],
            Instr::Memcpy { dst, src, bytes } => vec![*dst, *src, *bytes],
            Instr::Memset { dst, val, bytes } => vec![*dst, *val, *bytes],
            Instr::Call { args, .. } => args.clone(),
            Instr::CallIndirect { target, args, .. } => {
                let mut v = vec![*target];
                v.extend(args.iter().copied());
                v
            }
            Instr::Jump { .. } => vec![],
            Instr::Branch { cond, .. } => vec![*cond],
            Instr::Return { value } => value.iter().copied().collect(),
        }
    }

    /// Successor blocks if this is a terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Instr::Jump { target } => vec![*target],
            Instr::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            _ => vec![],
        }
    }

    /// Whether this instruction touches memory (used by the cost model).
    pub fn is_memory_op(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::Store { .. } | Instr::Memcpy { .. } | Instr::Memset { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_conversions() {
        let o: Operand = Reg(3).into();
        assert_eq!(o.as_reg(), Some(Reg(3)));
        let c: Operand = 42i64.into();
        assert_eq!(c.as_const_int(), Some(42));
        let f: Operand = 1.5f64.into();
        assert_eq!(f.as_const_int(), None);
        assert_eq!(Operand::null(), Operand::Const(Const::Null));
    }

    #[test]
    fn binop_roundtrip() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
        ] {
            assert_eq!(BinOp::from_name(op.name()), Some(op));
        }
        assert_eq!(BinOp::from_name("frob"), None);
    }

    #[test]
    fn cmpop_roundtrip() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(CmpOp::from_name(op.name()), Some(op));
        }
    }

    #[test]
    fn terminator_classification() {
        assert!(Instr::Jump { target: BlockId(0) }.is_terminator());
        assert!(Instr::Return { value: None }.is_terminator());
        assert!(Instr::Branch {
            cond: Operand::int(1),
            then_bb: BlockId(0),
            else_bb: BlockId(1)
        }
        .is_terminator());
        assert!(!Instr::Assign {
            dst: Reg(0),
            src: Operand::int(0)
        }
        .is_terminator());
    }

    #[test]
    fn def_and_uses() {
        let i = Instr::Bin {
            dst: Reg(2),
            op: BinOp::Add,
            lhs: Reg(0).into(),
            rhs: Reg(1).into(),
        };
        assert_eq!(i.def(), Some(Reg(2)));
        assert_eq!(i.uses().len(), 2);

        let st = Instr::Store {
            addr: Reg(0).into(),
            value: Operand::int(7),
            ty: TypeId(0),
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses().len(), 2);

        let call = Instr::Call {
            dst: None,
            callee: FuncId(0),
            args: vec![Operand::int(1), Reg(4).into()],
        };
        assert_eq!(call.def(), None);
        assert_eq!(call.uses().len(), 2);
    }

    #[test]
    fn successors_of_terminators() {
        let b = Instr::Branch {
            cond: Operand::int(0),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(Instr::Return { value: None }.successors(), vec![]);
    }

    #[test]
    fn memory_op_classification() {
        assert!(Instr::Load {
            dst: Reg(0),
            addr: Operand::null(),
            ty: TypeId(0)
        }
        .is_memory_op());
        assert!(!Instr::Jump { target: BlockId(0) }.is_memory_op());
    }

    #[test]
    fn display_ids() {
        assert_eq!(Reg(7).to_string(), "r7");
        assert_eq!(BlockId(2).to_string(), "bb2");
        assert_eq!(FuncId(1).to_string(), "fn1");
        assert_eq!(GlobalId(0).to_string(), "g0");
        let r = InstrRef {
            func: FuncId(1),
            block: BlockId(2),
            index: 3,
        };
        assert_eq!(r.to_string(), "fn1:bb2:3");
    }
}
