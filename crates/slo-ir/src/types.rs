//! Type system: scalars, pointers, records (structs), arrays, and the
//! [`TypeTable`] that interns them.
//!
//! Record layout follows C-like rules: each field is aligned to its natural
//! alignment, the record size is rounded up to the maximum field alignment.
//! Bit-fields are modeled as metadata on a field (`bit_width`); storage-wise
//! they occupy their declared scalar type. This is a simplification relative
//! to C storage-unit packing, documented in `DESIGN.md`; it only affects the
//! absolute sizes of bit-field-heavy records, not the analyses, which treat
//! bit-fields purely as a heuristic constraint (never remove / reorder them
//! across alignment boundaries).

use std::collections::HashMap;
use std::fmt;

/// Primitive scalar kinds supported by the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarKind {
    /// Signed 8-bit integer.
    I8,
    /// Signed 16-bit integer.
    I16,
    /// Signed 32-bit integer.
    I32,
    /// Signed 64-bit integer.
    I64,
    /// Unsigned 8-bit integer.
    U8,
    /// Unsigned 16-bit integer.
    U16,
    /// Unsigned 32-bit integer.
    U32,
    /// Unsigned 64-bit integer.
    U64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
}

impl ScalarKind {
    /// Size of the scalar in bytes.
    pub fn size(self) -> u64 {
        match self {
            ScalarKind::I8 | ScalarKind::U8 => 1,
            ScalarKind::I16 | ScalarKind::U16 => 2,
            ScalarKind::I32 | ScalarKind::U32 | ScalarKind::F32 => 4,
            ScalarKind::I64 | ScalarKind::U64 | ScalarKind::F64 => 8,
        }
    }

    /// Natural alignment in bytes (equals size for all supported scalars).
    pub fn align(self) -> u64 {
        self.size()
    }

    /// Whether this is a floating-point kind.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarKind::F32 | ScalarKind::F64)
    }

    /// Whether this is a signed integer kind.
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            ScalarKind::I8 | ScalarKind::I16 | ScalarKind::I32 | ScalarKind::I64
        )
    }

    /// The textual name used by the IR parser/printer.
    pub fn name(self) -> &'static str {
        match self {
            ScalarKind::I8 => "i8",
            ScalarKind::I16 => "i16",
            ScalarKind::I32 => "i32",
            ScalarKind::I64 => "i64",
            ScalarKind::U8 => "u8",
            ScalarKind::U16 => "u16",
            ScalarKind::U32 => "u32",
            ScalarKind::U64 => "u64",
            ScalarKind::F32 => "f32",
            ScalarKind::F64 => "f64",
        }
    }

    /// Parse a scalar kind from its textual name.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "i8" => ScalarKind::I8,
            "i16" => ScalarKind::I16,
            "i32" => ScalarKind::I32,
            "i64" => ScalarKind::I64,
            "u8" => ScalarKind::U8,
            "u16" => ScalarKind::U16,
            "u32" => ScalarKind::U32,
            "u64" => ScalarKind::U64,
            "f32" => ScalarKind::F32,
            "f64" => ScalarKind::F64,
            _ => return None,
        })
    }
}

impl fmt::Display for ScalarKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Handle to an interned [`Type`] in a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

/// Handle to a [`RecordType`] in a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId(pub u32);

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ty{}", self.0)
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rec{}", self.0)
    }
}

/// The structural shape of a type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// The unit/void type (function returns only).
    Void,
    /// A primitive scalar.
    Scalar(ScalarKind),
    /// A typed pointer to another type.
    Ptr(TypeId),
    /// A record (struct) type.
    Record(RecordId),
    /// A fixed-length inline array.
    Array(TypeId, u64),
    /// A function pointer; only identity matters for the analyses.
    FuncPtr,
}

/// One field of a record type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Source-level field name.
    pub name: String,
    /// Field type.
    pub ty: TypeId,
    /// `Some(width)` if this is a bit-field of `width` bits.
    pub bit_width: Option<u8>,
}

impl Field {
    /// Create a plain (non-bit-field) field.
    pub fn new(name: impl Into<String>, ty: TypeId) -> Self {
        Field {
            name: name.into(),
            ty,
            bit_width: None,
        }
    }

    /// Create a bit-field.
    pub fn bitfield(name: impl Into<String>, ty: TypeId, width: u8) -> Self {
        Field {
            name: name.into(),
            ty,
            bit_width: Some(width),
        }
    }
}

/// A record (struct) type: a named, ordered collection of fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordType {
    /// Source-level type name; unique within a [`TypeTable`].
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<Field>,
}

impl RecordType {
    /// Index of the field named `name`, if present.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

/// Computed memory layout for a record type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordLayout {
    /// Total size in bytes, including tail padding.
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
    /// Byte offset of each field, parallel to `RecordType::fields`.
    pub offsets: Vec<u64>,
}

/// Interning table for all types of a program.
///
/// All IR entities reference types through [`TypeId`]; structural types
/// (scalars, pointers, arrays) are deduplicated, records are nominal.
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    types: Vec<Type>,
    records: Vec<RecordType>,
    interned: HashMap<Type, TypeId>,
    record_by_name: HashMap<String, RecordId>,
}

impl TypeTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a structural type, returning its id.
    pub fn intern(&mut self, ty: Type) -> TypeId {
        if let Some(&id) = self.interned.get(&ty) {
            return id;
        }
        let id = TypeId(self.types.len() as u32);
        self.interned.insert(ty.clone(), id);
        self.types.push(ty);
        id
    }

    /// Shorthand: intern the void type.
    pub fn void(&mut self) -> TypeId {
        self.intern(Type::Void)
    }

    /// Shorthand: intern a scalar type.
    pub fn scalar(&mut self, k: ScalarKind) -> TypeId {
        self.intern(Type::Scalar(k))
    }

    /// Shorthand: intern a pointer to `to`.
    pub fn ptr(&mut self, to: TypeId) -> TypeId {
        self.intern(Type::Ptr(to))
    }

    /// Shorthand: intern an array type.
    pub fn array(&mut self, elem: TypeId, len: u64) -> TypeId {
        self.intern(Type::Array(elem, len))
    }

    /// Shorthand: intern the opaque function-pointer type.
    pub fn func_ptr(&mut self) -> TypeId {
        self.intern(Type::FuncPtr)
    }

    /// Declare a new record type. Returns both the record id and the
    /// interned `Type::Record` id.
    ///
    /// # Panics
    ///
    /// Panics if a record with the same name already exists.
    pub fn add_record(&mut self, rec: RecordType) -> (RecordId, TypeId) {
        assert!(
            !self.record_by_name.contains_key(&rec.name),
            "duplicate record type name `{}`",
            rec.name
        );
        let rid = RecordId(self.records.len() as u32);
        self.record_by_name.insert(rec.name.clone(), rid);
        self.records.push(rec);
        let tid = self.intern(Type::Record(rid));
        (rid, tid)
    }

    /// Replace the definition of an existing record (used by the BE when a
    /// transformation rewrites a type's field list in place).
    pub fn replace_record(&mut self, rid: RecordId, rec: RecordType) {
        let old_name = self.records[rid.0 as usize].name.clone();
        if old_name != rec.name {
            self.record_by_name.remove(&old_name);
            self.record_by_name.insert(rec.name.clone(), rid);
        }
        self.records[rid.0 as usize] = rec;
    }

    /// Look up a type by id.
    pub fn get(&self, id: TypeId) -> &Type {
        &self.types[id.0 as usize]
    }

    /// Look up a record by id.
    pub fn record(&self, id: RecordId) -> &RecordType {
        &self.records[id.0 as usize]
    }

    /// Look up a record by name.
    pub fn record_by_name(&self, name: &str) -> Option<RecordId> {
        self.record_by_name.get(name).copied()
    }

    /// The interned `TypeId` for `Type::Record(rid)` if it exists.
    pub fn record_type_id(&self, rid: RecordId) -> Option<TypeId> {
        self.interned.get(&Type::Record(rid)).copied()
    }

    /// Number of record types.
    pub fn num_records(&self) -> usize {
        self.records.len()
    }

    /// Number of interned types.
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// Iterate over all record ids.
    pub fn record_ids(&self) -> impl Iterator<Item = RecordId> {
        (0..self.records.len() as u32).map(RecordId)
    }

    /// Size of a type in bytes. Pointers are 8 bytes (64-bit target).
    pub fn size_of(&self, id: TypeId) -> u64 {
        match self.get(id) {
            Type::Void => 0,
            Type::Scalar(k) => k.size(),
            Type::Ptr(_) | Type::FuncPtr => 8,
            Type::Record(r) => self.layout_of(*r).size,
            Type::Array(elem, n) => self.size_of(*elem) * n,
        }
    }

    /// Alignment of a type in bytes.
    pub fn align_of(&self, id: TypeId) -> u64 {
        match self.get(id) {
            Type::Void => 1,
            Type::Scalar(k) => k.align(),
            Type::Ptr(_) | Type::FuncPtr => 8,
            Type::Record(r) => self.layout_of(*r).align,
            Type::Array(elem, _) => self.align_of(*elem),
        }
    }

    /// Compute the C-like layout of a record.
    ///
    /// Fields are placed in declaration order at their natural alignment;
    /// total size is rounded up to the record alignment. An empty record
    /// has size 0 and alignment 1.
    ///
    /// # Examples
    ///
    /// ```
    /// use slo_ir::{Field, RecordType, ScalarKind, TypeTable};
    ///
    /// let mut t = TypeTable::new();
    /// let i32t = t.scalar(ScalarKind::I32);
    /// let i64t = t.scalar(ScalarKind::I64);
    /// let (rid, _) = t.add_record(RecordType {
    ///     name: "s".into(),
    ///     fields: vec![Field::new("a", i32t), Field::new("b", i64t)],
    /// });
    /// let layout = t.layout_of(rid);
    /// assert_eq!(layout.offsets, vec![0, 8]); // `b` aligned to 8
    /// assert_eq!(layout.size, 16);
    /// ```
    pub fn layout_of(&self, rid: RecordId) -> RecordLayout {
        let rec = self.record(rid);
        let mut offset = 0u64;
        let mut align = 1u64;
        let mut offsets = Vec::with_capacity(rec.fields.len());
        for f in &rec.fields {
            let fa = self.align_of(f.ty);
            let fs = self.size_of(f.ty);
            align = align.max(fa);
            offset = round_up(offset, fa);
            offsets.push(offset);
            offset += fs;
        }
        let size = round_up(offset, align);
        RecordLayout {
            size,
            align,
            offsets,
        }
    }

    /// Whether `id` is (or transitively contains) the record `rid`.
    /// Used to detect recursive types *by value* (not through pointers).
    pub fn contains_record(&self, id: TypeId, rid: RecordId) -> bool {
        match self.get(id) {
            Type::Record(r) => {
                if *r == rid {
                    return true;
                }
                let rec = self.record(*r);
                rec.fields.iter().any(|f| self.contains_record(f.ty, rid))
            }
            Type::Array(elem, _) => self.contains_record(*elem, rid),
            _ => false,
        }
    }

    /// Whether record `rid` has a pointer field that points (possibly through
    /// arrays) back at `rid` itself — i.e. the type is *recursive* in the
    /// linked-data-structure sense (lists, trees).
    pub fn is_recursive(&self, rid: RecordId) -> bool {
        self.record(rid)
            .fields
            .iter()
            .any(|f| self.points_to_record(f.ty, rid))
    }

    fn points_to_record(&self, id: TypeId, rid: RecordId) -> bool {
        match self.get(id) {
            Type::Ptr(inner) => match self.get(*inner) {
                Type::Record(r) => *r == rid,
                _ => self.points_to_record(*inner, rid),
            },
            Type::Array(elem, _) => self.points_to_record(*elem, rid),
            _ => false,
        }
    }

    /// Record ids that appear *by value* inside another record or array —
    /// the paper's NEST condition.
    pub fn nested_records(&self) -> Vec<RecordId> {
        let mut nested = vec![false; self.records.len()];
        for rid in self.record_ids() {
            for f in &self.record(rid).fields {
                self.collect_value_records(f.ty, &mut nested);
            }
        }
        nested
            .iter()
            .enumerate()
            .filter_map(|(i, &n)| n.then_some(RecordId(i as u32)))
            .collect()
    }

    fn collect_value_records(&self, id: TypeId, out: &mut [bool]) {
        match self.get(id) {
            Type::Record(r) => {
                out[r.0 as usize] = true;
                for f in &self.record(*r).fields.clone() {
                    self.collect_value_records(f.ty, out);
                }
            }
            Type::Array(elem, _) => self.collect_value_records(*elem, out),
            _ => {}
        }
    }

    /// Pretty-print a type.
    pub fn display(&self, id: TypeId) -> String {
        match self.get(id) {
            Type::Void => "void".to_string(),
            Type::Scalar(k) => k.name().to_string(),
            Type::Ptr(inner) => format!("ptr<{}>", self.display(*inner)),
            Type::Record(r) => self.record(*r).name.clone(),
            Type::Array(elem, n) => format!("[{}; {}]", self.display(*elem), n),
            Type::FuncPtr => "fnptr".to_string(),
        }
    }

    /// Whether the type is a pointer (data or function).
    pub fn is_ptr(&self, id: TypeId) -> bool {
        matches!(self.get(id), Type::Ptr(_) | Type::FuncPtr)
    }

    /// If `id` is `ptr<record>`, the record id.
    pub fn pointee_record(&self, id: TypeId) -> Option<RecordId> {
        if let Type::Ptr(inner) = self.get(id) {
            if let Type::Record(r) = self.get(*inner) {
                return Some(*r);
            }
        }
        None
    }

    /// The record id if `id` is a record, a pointer to a record, or an
    /// array of records (any depth of array/pointer nesting).
    pub fn involved_record(&self, id: TypeId) -> Option<RecordId> {
        match self.get(id) {
            Type::Record(r) => Some(*r),
            Type::Ptr(inner) => self.involved_record(*inner),
            Type::Array(elem, _) => self.involved_record(*elem),
            _ => None,
        }
    }
}

/// Round `v` up to the next multiple of `align` (which must be a power of
/// two or any positive integer; we use the generic formula).
pub fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align > 0);
    v.div_ceil(align) * align
}

/// Precomputed size/align/layout tables for every type in a
/// [`TypeTable`].
///
/// [`TypeTable::layout_of`] and [`TypeTable::size_of`] recompute the
/// full (recursive) layout on every call, which is fine for analyses
/// that ask a handful of times but far too slow for an interpreter
/// asking on every `fieldaddr`/`indexaddr`. A `LayoutCache` is built
/// once per program snapshot and answers all layout queries with a
/// plain array index.
///
/// The cache is a snapshot: if records are replaced afterwards
/// (e.g. by a layout transformation), build a new cache.
#[derive(Debug, Clone)]
pub struct LayoutCache {
    type_sizes: Vec<u64>,
    type_aligns: Vec<u64>,
    layouts: Vec<RecordLayout>,
}

impl LayoutCache {
    /// Precompute sizes, alignments, and record layouts for every type
    /// currently interned in `table`.
    pub fn new(table: &TypeTable) -> Self {
        let layouts: Vec<RecordLayout> = table.record_ids().map(|r| table.layout_of(r)).collect();
        let mut type_sizes = Vec::with_capacity(table.num_types());
        let mut type_aligns = Vec::with_capacity(table.num_types());
        for i in 0..table.num_types() as u32 {
            type_sizes.push(table.size_of(TypeId(i)));
            type_aligns.push(table.align_of(TypeId(i)));
        }
        LayoutCache {
            type_sizes,
            type_aligns,
            layouts,
        }
    }

    /// Size of `id` in bytes (O(1)).
    #[inline]
    pub fn size_of(&self, id: TypeId) -> u64 {
        self.type_sizes[id.0 as usize]
    }

    /// Alignment of `id` in bytes (O(1)).
    #[inline]
    pub fn align_of(&self, id: TypeId) -> u64 {
        self.type_aligns[id.0 as usize]
    }

    /// The precomputed layout of record `rid` (O(1)).
    #[inline]
    pub fn layout(&self, rid: RecordId) -> &RecordLayout {
        &self.layouts[rid.0 as usize]
    }

    /// Byte offset of field `field` in record `rid` (O(1)).
    #[inline]
    pub fn field_offset(&self, rid: RecordId, field: u32) -> u64 {
        self.layouts[rid.0 as usize].offsets[field as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TypeTable {
        TypeTable::new()
    }

    #[test]
    fn scalar_sizes() {
        assert_eq!(ScalarKind::I8.size(), 1);
        assert_eq!(ScalarKind::U16.size(), 2);
        assert_eq!(ScalarKind::F32.size(), 4);
        assert_eq!(ScalarKind::F64.size(), 8);
        assert!(ScalarKind::F32.is_float());
        assert!(!ScalarKind::U64.is_float());
        assert!(ScalarKind::I32.is_signed());
        assert!(!ScalarKind::U32.is_signed());
    }

    #[test]
    fn scalar_names_roundtrip() {
        for k in [
            ScalarKind::I8,
            ScalarKind::I16,
            ScalarKind::I32,
            ScalarKind::I64,
            ScalarKind::U8,
            ScalarKind::U16,
            ScalarKind::U32,
            ScalarKind::U64,
            ScalarKind::F32,
            ScalarKind::F64,
        ] {
            assert_eq!(ScalarKind::from_name(k.name()), Some(k));
        }
        assert_eq!(ScalarKind::from_name("bogus"), None);
    }

    #[test]
    fn interning_dedups() {
        let mut t = table();
        let a = t.scalar(ScalarKind::I32);
        let b = t.scalar(ScalarKind::I32);
        assert_eq!(a, b);
        let p1 = t.ptr(a);
        let p2 = t.ptr(b);
        assert_eq!(p1, p2);
        assert_ne!(a, p1);
    }

    #[test]
    fn simple_record_layout() {
        let mut t = table();
        let i32t = t.scalar(ScalarKind::I32);
        let i64t = t.scalar(ScalarKind::I64);
        let (rid, _) = t.add_record(RecordType {
            name: "s".into(),
            fields: vec![
                Field::new("a", i32t),
                Field::new("b", i64t),
                Field::new("c", i32t),
            ],
        });
        let l = t.layout_of(rid);
        assert_eq!(l.offsets, vec![0, 8, 16]);
        assert_eq!(l.align, 8);
        assert_eq!(l.size, 24); // tail padded to 8
    }

    #[test]
    fn packed_small_fields() {
        let mut t = table();
        let i8t = t.scalar(ScalarKind::I8);
        let i16t = t.scalar(ScalarKind::I16);
        let (rid, _) = t.add_record(RecordType {
            name: "s".into(),
            fields: vec![
                Field::new("a", i8t),
                Field::new("b", i8t),
                Field::new("c", i16t),
            ],
        });
        let l = t.layout_of(rid);
        assert_eq!(l.offsets, vec![0, 1, 2]);
        assert_eq!(l.size, 4);
        assert_eq!(l.align, 2);
    }

    #[test]
    fn empty_record_layout() {
        let mut t = table();
        let (rid, _) = t.add_record(RecordType {
            name: "empty".into(),
            fields: vec![],
        });
        let l = t.layout_of(rid);
        assert_eq!(l.size, 0);
        assert_eq!(l.align, 1);
        assert!(l.offsets.is_empty());
    }

    #[test]
    fn nested_record_layout_and_detection() {
        let mut t = table();
        let i32t = t.scalar(ScalarKind::I32);
        let (inner, inner_ty) = t.add_record(RecordType {
            name: "inner".into(),
            fields: vec![Field::new("x", i32t), Field::new("y", i32t)],
        });
        let (outer, _) = t.add_record(RecordType {
            name: "outer".into(),
            fields: vec![Field::new("i", inner_ty), Field::new("z", i32t)],
        });
        let l = t.layout_of(outer);
        assert_eq!(l.offsets, vec![0, 8]);
        assert_eq!(l.size, 12);
        let nested = t.nested_records();
        assert_eq!(nested, vec![inner]);
        assert!(t.contains_record(inner_ty, inner));
        assert!(!t.is_recursive(outer));
    }

    #[test]
    fn recursive_detection_through_pointer() {
        let mut t = table();
        let i64t = t.scalar(ScalarKind::I64);
        // Forward-declare by creating the record first with a placeholder,
        // then fix up: simplest is two-phase via replace_record.
        let (rid, rty) = t.add_record(RecordType {
            name: "list".into(),
            fields: vec![],
        });
        let pnode = t.ptr(rty);
        t.replace_record(
            rid,
            RecordType {
                name: "list".into(),
                fields: vec![Field::new("val", i64t), Field::new("next", pnode)],
            },
        );
        assert!(t.is_recursive(rid));
        // A pointer field does not make the type "nested".
        assert!(t.nested_records().is_empty());
    }

    #[test]
    fn pointer_sizes() {
        let mut t = table();
        let i8t = t.scalar(ScalarKind::I8);
        let p = t.ptr(i8t);
        assert_eq!(t.size_of(p), 8);
        assert_eq!(t.align_of(p), 8);
        let f = t.func_ptr();
        assert_eq!(t.size_of(f), 8);
    }

    #[test]
    fn array_layout() {
        let mut t = table();
        let i32t = t.scalar(ScalarKind::I32);
        let arr = t.array(i32t, 10);
        assert_eq!(t.size_of(arr), 40);
        assert_eq!(t.align_of(arr), 4);
    }

    #[test]
    fn display_types() {
        let mut t = table();
        let i32t = t.scalar(ScalarKind::I32);
        let p = t.ptr(i32t);
        let (_, rty) = t.add_record(RecordType {
            name: "node".into(),
            fields: vec![Field::new("v", i32t)],
        });
        let pr = t.ptr(rty);
        assert_eq!(t.display(p), "ptr<i32>");
        assert_eq!(t.display(pr), "ptr<node>");
        let arr = t.array(i32t, 4);
        assert_eq!(t.display(arr), "[i32; 4]");
    }

    #[test]
    fn involved_record_digs_through() {
        let mut t = table();
        let i32t = t.scalar(ScalarKind::I32);
        let (rid, rty) = t.add_record(RecordType {
            name: "r".into(),
            fields: vec![Field::new("v", i32t)],
        });
        let p = t.ptr(rty);
        let pp = t.ptr(p);
        let arr = t.array(rty, 3);
        assert_eq!(t.involved_record(pp), Some(rid));
        assert_eq!(t.involved_record(arr), Some(rid));
        assert_eq!(t.involved_record(i32t), None);
    }

    #[test]
    fn field_index_lookup() {
        let mut t = table();
        let i32t = t.scalar(ScalarKind::I32);
        let (rid, _) = t.add_record(RecordType {
            name: "r".into(),
            fields: vec![Field::new("a", i32t), Field::new("b", i32t)],
        });
        assert_eq!(t.record(rid).field_index("b"), Some(1));
        assert_eq!(t.record(rid).field_index("zz"), None);
    }

    #[test]
    fn bitfield_metadata() {
        let mut t = table();
        let u32t = t.scalar(ScalarKind::U32);
        let f = Field::bitfield("flags", u32t, 3);
        assert_eq!(f.bit_width, Some(3));
    }

    #[test]
    fn round_up_works() {
        assert_eq!(round_up(0, 8), 0);
        assert_eq!(round_up(1, 8), 8);
        assert_eq!(round_up(8, 8), 8);
        assert_eq!(round_up(9, 4), 12);
    }

    #[test]
    fn layout_cache_matches_direct_computation() {
        let mut t = table();
        let i32t = t.scalar(ScalarKind::I32);
        let f64t = t.scalar(ScalarKind::F64);
        let (inner, inner_ty) = t.add_record(RecordType {
            name: "inner".into(),
            fields: vec![Field::new("x", i32t), Field::new("y", f64t)],
        });
        let arr = t.array(inner_ty, 3);
        let (outer, _) = t.add_record(RecordType {
            name: "outer".into(),
            fields: vec![Field::new("a", arr), Field::new("b", i32t)],
        });
        let p = t.ptr(inner_ty);
        let cache = LayoutCache::new(&t);
        for id in [i32t, f64t, inner_ty, arr, p] {
            assert_eq!(
                cache.size_of(id),
                t.size_of(id),
                "size of {}",
                t.display(id)
            );
            assert_eq!(
                cache.align_of(id),
                t.align_of(id),
                "align of {}",
                t.display(id)
            );
        }
        for rid in [inner, outer] {
            assert_eq!(*cache.layout(rid), t.layout_of(rid));
        }
        assert_eq!(cache.field_offset(outer, 1), t.layout_of(outer).offsets[1]);
    }

    #[test]
    #[should_panic(expected = "duplicate record type name")]
    fn duplicate_record_name_panics() {
        let mut t = table();
        t.add_record(RecordType {
            name: "dup".into(),
            fields: vec![],
        });
        t.add_record(RecordType {
            name: "dup".into(),
            fields: vec![],
        });
    }
}
