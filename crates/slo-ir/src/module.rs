//! Program structure: functions, basic blocks, globals, compilation units.
//!
//! A [`Program`] corresponds to the paper's whole-program (IPA) scope: all
//! compilation units linked together, with a single type-unified
//! [`TypeTable`]. Each function belongs to a *compilation unit*; the FE
//! analyses run per unit and IPA aggregates their summaries — mirroring the
//! SYZYGY FE/IPA/BE split.

use crate::instr::{BlockId, FuncId, GlobalId, Instr, InstrRef, Reg};
use crate::types::{TypeId, TypeTable};

/// A straight-line sequence of instructions ending in a terminator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BasicBlock {
    /// Instructions; the last one must be a terminator once the function
    /// is complete (enforced by the verifier).
    pub instrs: Vec<Instr>,
}

impl BasicBlock {
    /// The block's terminator, if the block is non-empty and well-formed.
    pub fn terminator(&self) -> Option<&Instr> {
        self.instrs.last().filter(|i| i.is_terminator())
    }

    /// Successor blocks of this block.
    pub fn successors(&self) -> Vec<BlockId> {
        self.terminator()
            .map(|t| t.successors())
            .unwrap_or_default()
    }
}

/// How a function is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuncKind {
    /// Defined in this program; has a body.
    Defined,
    /// Declared but defined outside the IPA scope (another library).
    External,
    /// A standard-library function (the compiler tool chain marks these
    /// specially — the paper's LIBC condition).
    Libc,
}

/// A function: signature plus (for defined functions) a CFG body.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name; unique within a program.
    pub name: String,
    /// Parameter registers and their types. Parameters occupy the first
    /// registers of the function.
    pub params: Vec<(Reg, TypeId)>,
    /// Return type (`void` id for none).
    pub ret: TypeId,
    /// Definition kind.
    pub kind: FuncKind,
    /// Basic blocks; `blocks[0]` is the entry block.
    pub blocks: Vec<BasicBlock>,
    /// Total number of virtual registers used.
    pub num_regs: u32,
    /// Index of the compilation unit this function belongs to.
    pub unit: usize,
}

impl Function {
    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Whether this function has a body.
    pub fn is_defined(&self) -> bool {
        self.kind == FuncKind::Defined
    }

    /// Get a block by id.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Get a block mutably.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Iterate over block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Allocate a fresh virtual register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.num_regs);
        self.num_regs += 1;
        r
    }

    /// Predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for bid in self.block_ids() {
            for succ in self.block(bid).successors() {
                preds[succ.index()].push(bid);
            }
        }
        preds
    }

    /// Total instruction count across all blocks.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

/// A global variable.
#[derive(Debug, Clone)]
pub struct GlobalVar {
    /// Global name; unique within a program.
    pub name: String,
    /// The variable's type. A global of pointer type holds a pointer value;
    /// a global of record/array type is an in-place aggregate whose address
    /// is taken via `AddrOfGlobal`.
    pub ty: TypeId,
}

/// A compilation unit: a named set of functions compiled together by the FE.
#[derive(Debug, Clone, Default)]
pub struct Unit {
    /// Unit (source file) name.
    pub name: String,
}

/// A whole program: the unit of inter-procedural analysis.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The type-unified symbol table.
    pub types: TypeTable,
    /// All global variables.
    pub globals: Vec<GlobalVar>,
    /// All functions (defined and external).
    pub funcs: Vec<Function>,
    /// Compilation units; `Function::unit` indexes into this.
    pub units: Vec<Unit>,
}

impl Program {
    /// Create an empty program with a single default unit.
    pub fn new() -> Self {
        Program {
            types: TypeTable::new(),
            globals: Vec::new(),
            funcs: Vec::new(),
            units: vec![Unit {
                name: "unit0".into(),
            }],
        }
    }

    /// Add a compilation unit, returning its index.
    pub fn add_unit(&mut self, name: impl Into<String>) -> usize {
        self.units.push(Unit { name: name.into() });
        self.units.len() - 1
    }

    /// Add a function, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name exists.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        assert!(
            self.func_by_name(&f.name).is_none(),
            "duplicate function name `{}`",
            f.name
        );
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(f);
        id
    }

    /// Add a global variable, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if a global with the same name exists.
    pub fn add_global(&mut self, g: GlobalVar) -> GlobalId {
        assert!(
            self.global_by_name(&g.name).is_none(),
            "duplicate global name `{}`",
            g.name
        );
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(g);
        id
    }

    /// Get a function by id.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Get a function mutably.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Get a global by id.
    pub fn global(&self, id: GlobalId) -> &GlobalVar {
        &self.globals[id.index()]
    }

    /// Find a function id by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Find a global id by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// The `main` function, if present.
    pub fn main(&self) -> Option<FuncId> {
        self.func_by_name("main")
    }

    /// Iterate over function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> {
        (0..self.funcs.len() as u32).map(FuncId)
    }

    /// Iterate over global ids.
    pub fn global_ids(&self) -> impl Iterator<Item = GlobalId> {
        (0..self.globals.len() as u32).map(GlobalId)
    }

    /// Iterate over `(InstrRef, &Instr)` for every instruction of a
    /// defined function.
    pub fn instrs_of(&self, fid: FuncId) -> impl Iterator<Item = (InstrRef, &Instr)> {
        let f = self.func(fid);
        f.blocks.iter().enumerate().flat_map(move |(bi, b)| {
            b.instrs.iter().enumerate().map(move |(ii, ins)| {
                (
                    InstrRef {
                        func: fid,
                        block: BlockId(bi as u32),
                        index: ii as u32,
                    },
                    ins,
                )
            })
        })
    }

    /// Total instruction count of all defined functions.
    pub fn instr_count(&self) -> usize {
        self.funcs
            .iter()
            .filter(|f| f.is_defined())
            .map(|f| f.instr_count())
            .sum()
    }

    /// Fetch the instruction behind an [`InstrRef`].
    pub fn instr(&self, r: InstrRef) -> &Instr {
        &self.func(r.func).blocks[r.block.index()].instrs[r.index as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Operand;
    use crate::types::ScalarKind;

    fn empty_defined(name: &str) -> Function {
        Function {
            name: name.into(),
            params: vec![],
            ret: TypeId(0),
            kind: FuncKind::Defined,
            blocks: vec![BasicBlock {
                instrs: vec![Instr::Return { value: None }],
            }],
            num_regs: 0,
            unit: 0,
        }
    }

    #[test]
    fn add_and_lookup_funcs() {
        let mut p = Program::new();
        let void = p.types.void();
        let mut f = empty_defined("main");
        f.ret = void;
        let id = p.add_func(f);
        assert_eq!(p.func_by_name("main"), Some(id));
        assert_eq!(p.main(), Some(id));
        assert_eq!(p.func(id).name, "main");
        assert!(p.func_by_name("other").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_func_panics() {
        let mut p = Program::new();
        p.add_func(empty_defined("f"));
        p.add_func(empty_defined("f"));
    }

    #[test]
    fn globals() {
        let mut p = Program::new();
        let i64t = p.types.scalar(ScalarKind::I64);
        let g = p.add_global(GlobalVar {
            name: "counter".into(),
            ty: i64t,
        });
        assert_eq!(p.global_by_name("counter"), Some(g));
        assert_eq!(p.global(g).name, "counter");
    }

    #[test]
    #[should_panic(expected = "duplicate global name")]
    fn duplicate_global_panics() {
        let mut p = Program::new();
        let t = p.types.scalar(ScalarKind::I32);
        p.add_global(GlobalVar {
            name: "g".into(),
            ty: t,
        });
        p.add_global(GlobalVar {
            name: "g".into(),
            ty: t,
        });
    }

    #[test]
    fn block_successors_and_preds() {
        let mut f = empty_defined("f");
        f.blocks = vec![
            BasicBlock {
                instrs: vec![Instr::Branch {
                    cond: Operand::int(1),
                    then_bb: BlockId(1),
                    else_bb: BlockId(2),
                }],
            },
            BasicBlock {
                instrs: vec![Instr::Jump { target: BlockId(2) }],
            },
            BasicBlock {
                instrs: vec![Instr::Return { value: None }],
            },
        ];
        assert_eq!(
            f.block(BlockId(0)).successors(),
            vec![BlockId(1), BlockId(2)]
        );
        let preds = f.predecessors();
        assert_eq!(preds[2], vec![BlockId(0), BlockId(1)]);
        assert!(preds[0].is_empty());
    }

    #[test]
    fn instr_iteration_and_refs() {
        let mut p = Program::new();
        let fid = p.add_func(empty_defined("f"));
        let refs: Vec<_> = p.instrs_of(fid).map(|(r, _)| r).collect();
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].func, fid);
        assert!(matches!(p.instr(refs[0]), Instr::Return { .. }));
        assert_eq!(p.instr_count(), 1);
    }

    #[test]
    fn fresh_reg_monotonic() {
        let mut f = empty_defined("f");
        let a = f.fresh_reg();
        let b = f.fresh_reg();
        assert_ne!(a, b);
        assert_eq!(f.num_regs, 2);
    }

    #[test]
    fn units() {
        let mut p = Program::new();
        assert_eq!(p.units.len(), 1);
        let u = p.add_unit("file2.c");
        assert_eq!(u, 1);
        assert_eq!(p.units[1].name, "file2.c");
    }
}
