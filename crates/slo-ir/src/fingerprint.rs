//! Stable content fingerprints for IR programs.
//!
//! The batch-optimization service memoizes analysis results by content
//! hash (normalized IR + scheme + config). Rust's default hashers are
//! either randomized per process (`RandomState`) or not guaranteed
//! stable across releases, so the cache key is built on a fixed FNV-1a
//! 64-bit hash: deterministic across runs, platforms and toolchains,
//! cheap to stream into, and good enough for a bounded in-memory cache
//! (collisions only cost a spurious hit on a table that also stores the
//! full key for verification).

use crate::Program;
use std::hash::Hasher;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64-bit hasher with a stable, documented output.
///
/// Implements [`std::hash::Hasher`] so `#[derive(Hash)]` types can be
/// folded in, but unlike `DefaultHasher` the result is a pure function
/// of the input bytes.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold a string in, length-prefixed so `("ab","c")` and
    /// `("a","bc")` hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Fold a boolean in.
    pub fn write_bool(&mut self, b: bool) {
        self.write_u8(b as u8);
    }

    /// Fold an `f64` in by bit pattern (configs carry thresholds).
    pub fn write_f64(&mut self, f: f64) {
        self.write_u64(f.to_bits());
    }

    /// The current digest.
    pub fn digest(&self) -> u64 {
        self.0
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

/// Content hash of a program's *normalized* form.
///
/// Normalization is the pretty-printer ([`crate::printer::print_program`]),
/// which is a parse/print fixpoint: two sources that parse to the same
/// program (whitespace, ordering of nothing — the printer is canonical)
/// fingerprint identically, and any semantic difference (a type, a
/// field, an instruction, a constant) changes the digest.
pub fn fingerprint_program(p: &Program) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(&crate::printer::print_program(p));
    h.digest()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = "record n { a: i64, b: i64 }\nfunc main() -> i64 {\nbb0:\n  ret 0\n}\n";

    #[test]
    fn deterministic_and_text_sensitive() {
        let a = parse(SRC).expect("parse");
        let b = parse(SRC).expect("parse");
        assert_eq!(fingerprint_program(&a), fingerprint_program(&b));
        let c = parse(&SRC.replace("ret 0", "ret 1")).expect("parse");
        assert_ne!(fingerprint_program(&a), fingerprint_program(&c));
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse(SRC).expect("parse");
        let b = parse(&SRC.replace("  ret", "      ret")).expect("parse");
        assert_eq!(fingerprint_program(&a), fingerprint_program(&b));
    }

    #[test]
    fn known_vectors() {
        // FNV-1a test vectors (bare byte stream, no length prefix).
        let mut h = Fnv64::new();
        std::hash::Hasher::write(&mut h, b"");
        assert_eq!(h.digest(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        std::hash::Hasher::write(&mut h, b"a");
        assert_eq!(h.digest(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn str_framing_disambiguates() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.digest(), b.digest());
    }
}
