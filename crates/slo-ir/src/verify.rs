//! IR well-formedness verifier.
//!
//! The verifier checks the structural invariants the analyses and the VM
//! rely on. It is run by tests after every transformation to catch rewriting
//! bugs early.

use crate::instr::{FuncId, Instr, Operand, Reg};
use crate::module::Program;
use crate::types::Type;
use std::fmt;

/// One verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the problem occurred (if applicable).
    pub func: Option<FuncId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.func {
            Some(id) => write!(f, "[{}] {}", id, self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify a whole program. Returns all problems found (empty = valid).
pub fn verify(p: &Program) -> Vec<VerifyError> {
    let mut errs = Vec::new();

    for fid in p.func_ids() {
        let f = p.func(fid);
        let push = |errs: &mut Vec<VerifyError>, msg: String| {
            errs.push(VerifyError {
                func: Some(fid),
                message: msg,
            })
        };

        if !f.is_defined() {
            if !f.blocks.is_empty() {
                push(&mut errs, "external function has a body".into());
            }
            continue;
        }
        if f.blocks.is_empty() {
            push(&mut errs, "defined function has no blocks".into());
            continue;
        }

        // parameters occupy the low registers r0..rn
        if (f.params.len() as u32) > f.num_regs {
            push(
                &mut errs,
                format!(
                    "{} params do not fit in {} registers",
                    f.params.len(),
                    f.num_regs
                ),
            );
        }
        for (i, (Reg(r), _)) in f.params.iter().enumerate() {
            if *r != i as u32 {
                push(&mut errs, format!("param {i} is bound to r{r}, not r{i}"));
            }
        }
        let ret_is_void = matches!(p.types.get(f.ret), Type::Void);

        let nblocks = f.blocks.len() as u32;
        for (bi, b) in f.blocks.iter().enumerate() {
            if b.instrs.is_empty() {
                push(&mut errs, format!("bb{bi} is empty"));
                continue;
            }
            let last = b.instrs.len() - 1;
            for (ii, ins) in b.instrs.iter().enumerate() {
                if ins.is_terminator() != (ii == last) {
                    push(
                        &mut errs,
                        format!("bb{bi}:{ii}: terminator placement is wrong"),
                    );
                }
                // register ranges
                if let Some(Reg(r)) = ins.def() {
                    if r >= f.num_regs {
                        push(&mut errs, format!("bb{bi}:{ii}: def of out-of-range r{r}"));
                    }
                }
                for u in ins.uses() {
                    if let Operand::Reg(Reg(r)) = u {
                        if r >= f.num_regs {
                            push(&mut errs, format!("bb{bi}:{ii}: use of out-of-range r{r}"));
                        }
                    }
                }
                // block targets
                for s in ins.successors() {
                    if s.0 >= nblocks {
                        push(&mut errs, format!("bb{bi}:{ii}: jump to missing {s}"));
                    }
                }
                // structural checks per instruction
                match ins {
                    Instr::FieldAddr { record, field, .. } => {
                        if record.0 as usize >= p.types.num_records() {
                            push(&mut errs, format!("bb{bi}:{ii}: unknown record {record}"));
                        } else if *field as usize >= p.types.record(*record).fields.len() {
                            push(
                                &mut errs,
                                format!(
                                    "bb{bi}:{ii}: field index {field} out of range for `{}`",
                                    p.types.record(*record).name
                                ),
                            );
                        }
                    }
                    Instr::Call { callee, args, .. } => {
                        if callee.index() >= p.funcs.len() {
                            push(&mut errs, format!("bb{bi}:{ii}: unknown callee {callee}"));
                        } else {
                            let cf = p.func(*callee);
                            if args.len() != cf.params.len() {
                                push(
                                    &mut errs,
                                    format!(
                                        "bb{bi}:{ii}: call of `{}` passes {} args for {} params",
                                        cf.name,
                                        args.len(),
                                        cf.params.len()
                                    ),
                                );
                            }
                        }
                    }
                    Instr::CallIndirect {
                        args, arg_types, ..
                    } => {
                        if args.len() != arg_types.len() {
                            push(
                                &mut errs,
                                format!(
                                    "bb{bi}:{ii}: icall passes {} args with {} declared types",
                                    args.len(),
                                    arg_types.len()
                                ),
                            );
                        }
                        for t in arg_types {
                            if (t.0 as usize) >= p.types.num_types() {
                                push(&mut errs, format!("bb{bi}:{ii}: unknown type {t}"));
                            }
                        }
                    }
                    Instr::Cast { from, to, .. } => {
                        for t in [from, to] {
                            if (t.0 as usize) >= p.types.num_types() {
                                push(&mut errs, format!("bb{bi}:{ii}: unknown type {t}"));
                            }
                        }
                    }
                    Instr::IndexAddr { elem, .. } if (elem.0 as usize) >= p.types.num_types() => {
                        push(&mut errs, format!("bb{bi}:{ii}: unknown type {elem}"));
                    }
                    Instr::Return { value } => {
                        if ret_is_void && value.is_some() {
                            push(
                                &mut errs,
                                format!("bb{bi}:{ii}: void function returns a value"),
                            );
                        }
                        if !ret_is_void && value.is_none() {
                            push(
                                &mut errs,
                                format!("bb{bi}:{ii}: non-void function returns no value"),
                            );
                        }
                    }
                    Instr::FuncAddr { func, .. } if func.index() >= p.funcs.len() => {
                        push(&mut errs, format!("bb{bi}:{ii}: unknown function {func}"));
                    }
                    Instr::LoadGlobal { global, .. }
                    | Instr::StoreGlobal { global, .. }
                    | Instr::AddrOfGlobal { global, .. }
                        if global.index() >= p.globals.len() =>
                    {
                        push(&mut errs, format!("bb{bi}:{ii}: unknown global {global}"));
                    }
                    Instr::Load { ty, .. } | Instr::Store { ty, .. } => {
                        if (ty.0 as usize) >= p.types.num_types() {
                            push(&mut errs, format!("bb{bi}:{ii}: unknown type {ty}"));
                        } else if matches!(p.types.get(*ty), Type::Record(_) | Type::Array(..)) {
                            push(
                                &mut errs,
                                format!(
                                    "bb{bi}:{ii}: aggregate load/store of {} (use memcpy)",
                                    p.types.display(*ty)
                                ),
                            );
                        }
                    }
                    Instr::Alloc { elem, .. } | Instr::Realloc { elem, .. }
                        if (elem.0 as usize) >= p.types.num_types() =>
                    {
                        push(&mut errs, format!("bb{bi}:{ii}: unknown type {elem}"));
                    }
                    _ => {}
                }
            }
        }
    }

    // unique names already enforced on construction; re-check cheaply.
    let mut names: Vec<&str> = p.funcs.iter().map(|f| f.name.as_str()).collect();
    names.sort_unstable();
    for w in names.windows(2) {
        if w[0] == w[1] {
            errs.push(VerifyError {
                func: None,
                message: format!("duplicate function name `{}`", w[0]),
            });
        }
    }
    let mut gnames: Vec<&str> = p.globals.iter().map(|g| g.name.as_str()).collect();
    gnames.sort_unstable();
    for w in gnames.windows(2) {
        if w[0] == w[1] {
            errs.push(VerifyError {
                func: None,
                message: format!("duplicate global name `{}`", w[0]),
            });
        }
    }

    errs
}

/// Panic with a readable message if the program is invalid. For tests.
///
/// # Panics
///
/// Panics if [`verify`] reports any error.
pub fn assert_valid(p: &Program) {
    let errs = verify(p);
    assert!(
        errs.is_empty(),
        "IR verification failed:\n{}",
        errs.iter()
            .map(|e| format!("  - {e}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::{BlockId, Operand};
    use crate::module::{BasicBlock, FuncKind, Function};
    use crate::types::{Field, ScalarKind, TypeId};

    #[test]
    fn valid_program_passes() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("main", vec![], i64t);
        pb.define(f, |fb| {
            fb.count_loop(Operand::int(3), |fb, _| {
                fb.iconst(0);
            });
            fb.ret(Some(Operand::int(0)));
        });
        let p = pb.finish();
        assert!(verify(&p).is_empty());
        assert_valid(&p);
    }

    #[test]
    fn missing_terminator_detected() {
        let mut p = Program::new();
        let void = p.types.void();
        p.add_func(Function {
            name: "f".into(),
            params: vec![],
            ret: void,
            kind: FuncKind::Defined,
            blocks: vec![BasicBlock {
                instrs: vec![Instr::Assign {
                    dst: Reg(0),
                    src: Operand::int(1),
                }],
            }],
            num_regs: 1,
            unit: 0,
        });
        let errs = verify(&p);
        assert!(errs.iter().any(|e| e.message.contains("terminator")));
    }

    #[test]
    fn out_of_range_register_detected() {
        let mut p = Program::new();
        let void = p.types.void();
        p.add_func(Function {
            name: "f".into(),
            params: vec![],
            ret: void,
            kind: FuncKind::Defined,
            blocks: vec![BasicBlock {
                instrs: vec![
                    Instr::Assign {
                        dst: Reg(5),
                        src: Operand::int(1),
                    },
                    Instr::Return { value: None },
                ],
            }],
            num_regs: 1,
            unit: 0,
        });
        let errs = verify(&p);
        assert!(errs.iter().any(|e| e.message.contains("out-of-range")));
    }

    #[test]
    fn bad_jump_target_detected() {
        let mut p = Program::new();
        let void = p.types.void();
        p.add_func(Function {
            name: "f".into(),
            params: vec![],
            ret: void,
            kind: FuncKind::Defined,
            blocks: vec![BasicBlock {
                instrs: vec![Instr::Jump { target: BlockId(9) }],
            }],
            num_regs: 0,
            unit: 0,
        });
        let errs = verify(&p);
        assert!(errs.iter().any(|e| e.message.contains("missing bb9")));
    }

    #[test]
    fn bad_field_index_detected() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let (rid, rty) = pb.record("r", vec![Field::new("a", i64t)]);
        let f = pb.declare("f", vec![], i64t);
        pb.define(f, |fb| {
            let x = fb.alloc(rty, Operand::int(1));
            let _ = fb.field_addr(x.into(), rid, 7); // out of range
            fb.ret(Some(Operand::int(0)));
        });
        let p = pb.finish();
        let errs = verify(&p);
        assert!(errs.iter().any(|e| e.message.contains("field index 7")));
    }

    #[test]
    fn aggregate_load_detected() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let (_, rty) = pb.record("r", vec![Field::new("a", i64t)]);
        let f = pb.declare("f", vec![], i64t);
        pb.define(f, |fb| {
            let x = fb.alloc(rty, Operand::int(1));
            let _ = fb.load(x.into(), rty); // loading a whole record
            fb.ret(Some(Operand::int(0)));
        });
        let p = pb.finish();
        let errs = verify(&p);
        assert!(errs.iter().any(|e| e.message.contains("aggregate")));
    }

    #[test]
    fn empty_block_detected() {
        let mut p = Program::new();
        let void = p.types.void();
        p.add_func(Function {
            name: "f".into(),
            params: vec![],
            ret: void,
            kind: FuncKind::Defined,
            blocks: vec![BasicBlock { instrs: vec![] }],
            num_regs: 0,
            unit: 0,
        });
        let errs = verify(&p);
        assert!(errs.iter().any(|e| e.message.contains("empty")));
    }

    #[test]
    fn call_arity_mismatch_detected() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let callee = pb.declare("callee", vec![i64t, i64t], i64t);
        pb.define(callee, |fb| {
            let s = fb.add(fb.param(0).into(), fb.param(1).into());
            fb.ret(Some(s.into()));
        });
        let f = pb.declare("main", vec![], i64t);
        pb.define(f, |fb| {
            let v = fb.call(callee, vec![Operand::int(1)]); // one arg short
            fb.ret(Some(v.into()));
        });
        let p = pb.finish();
        let errs = verify(&p);
        assert!(errs.iter().any(|e| e.message.contains("passes 1 args")));
    }

    #[test]
    fn icall_arg_type_arity_mismatch_detected() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("main", vec![], i64t);
        pb.define(f, |fb| {
            let t = fb.func_addr(FuncId(0));
            let v = fb.call_indirect(t.into(), vec![Operand::int(1)], vec![]);
            fb.ret(Some(v.into()));
        });
        let p = pb.finish();
        let errs = verify(&p);
        assert!(errs
            .iter()
            .any(|e| e.message.contains("1 args with 0 declared types")));
    }

    #[test]
    fn return_mismatch_detected() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let void = pb.void();
        let f = pb.declare("f", vec![], void);
        pb.define(f, |fb| fb.ret(Some(Operand::int(1))));
        let g = pb.declare("g", vec![], i64t);
        pb.define(g, |fb| fb.ret(None));
        let p = pb.finish();
        let errs = verify(&p);
        assert!(errs
            .iter()
            .any(|e| e.message.contains("void function returns a value")));
        assert!(errs
            .iter()
            .any(|e| e.message.contains("non-void function returns no value")));
    }

    #[test]
    fn unknown_cast_type_detected() {
        let mut p = Program::new();
        let i64t = p.types.scalar(ScalarKind::I64);
        p.add_func(Function {
            name: "f".into(),
            params: vec![],
            ret: i64t,
            kind: FuncKind::Defined,
            blocks: vec![BasicBlock {
                instrs: vec![
                    Instr::Cast {
                        dst: Reg(0),
                        src: Operand::int(0),
                        from: TypeId(88),
                        to: i64t,
                    },
                    Instr::Return {
                        value: Some(Operand::int(0)),
                    },
                ],
            }],
            num_regs: 1,
            unit: 0,
        });
        let errs = verify(&p);
        assert!(errs.iter().any(|e| e.message.contains("unknown type")));
    }

    #[test]
    fn misbound_params_detected() {
        let mut p = Program::new();
        let i64t = p.types.scalar(ScalarKind::I64);
        p.add_func(Function {
            name: "f".into(),
            params: vec![(Reg(3), i64t)],
            ret: i64t,
            kind: FuncKind::Defined,
            blocks: vec![BasicBlock {
                instrs: vec![Instr::Return {
                    value: Some(Operand::int(0)),
                }],
            }],
            num_regs: 4,
            unit: 0,
        });
        let errs = verify(&p);
        assert!(errs.iter().any(|e| e.message.contains("bound to r3")));
    }

    #[test]
    fn duplicate_global_name_detected() {
        let mut p = Program::new();
        let i64t = p.types.scalar(ScalarKind::I64);
        p.globals.push(crate::module::GlobalVar {
            name: "G".into(),
            ty: i64t,
        });
        p.globals.push(crate::module::GlobalVar {
            name: "G".into(),
            ty: i64t,
        });
        let errs = verify(&p);
        assert!(errs
            .iter()
            .any(|e| e.message.contains("duplicate global name")));
    }

    #[test]
    fn unknown_type_in_load() {
        let mut p = Program::new();
        let void = p.types.void();
        p.add_func(Function {
            name: "f".into(),
            params: vec![],
            ret: void,
            kind: FuncKind::Defined,
            blocks: vec![BasicBlock {
                instrs: vec![
                    Instr::Load {
                        dst: Reg(0),
                        addr: Operand::null(),
                        ty: TypeId(99),
                    },
                    Instr::Return { value: None },
                ],
            }],
            num_regs: 1,
            unit: 0,
        });
        let errs = verify(&p);
        assert!(errs.iter().any(|e| e.message.contains("unknown type")));
    }
}
