//! Loop structure graph via Havlak's algorithm.
//!
//! The paper's FE profitability analysis builds affinity groups at loop
//! granularity using "the loop optimizer's loop recognition, which is based
//! on \[Havlak 97\]". This module implements Havlak's nesting algorithm for
//! reducible *and* irreducible loops, producing a loop forest with nesting
//! depths used both for affinity grouping and for the static frequency
//! estimator.

use crate::dom::DomTree;
use crate::instr::BlockId;
use crate::module::Function;
use std::collections::HashSet;

/// Handle to a loop within a [`LoopForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

/// One natural (or irreducible) loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header block.
    pub header: BlockId,
    /// All blocks belonging to this loop, including the header and the
    /// blocks of nested loops.
    pub blocks: Vec<BlockId>,
    /// The enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Nesting depth: outermost loops have depth 1.
    pub depth: u32,
    /// Whether the loop is reducible (single-entry).
    pub reducible: bool,
}

/// The loop nesting forest of one function.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    loops: Vec<Loop>,
    /// Innermost loop containing each block, if any.
    innermost: Vec<Option<LoopId>>,
}

#[derive(Clone, Copy, PartialEq)]
enum BbKind {
    Top,
    NonHeader,
    Reducible,
    Irreducible,
    Dead,
}

/// Union-find over DFS numbers.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, child: usize, parent: usize) {
        let rc = self.find(child);
        let rp = self.find(parent);
        if rc != rp {
            self.parent[rc] = rp;
        }
    }
}

impl LoopForest {
    /// Compute the loop forest of `f` using Havlak's algorithm.
    pub fn compute(f: &Function) -> Self {
        let nblocks = f.blocks.len();
        if nblocks == 0 {
            return LoopForest::default();
        }

        // --- DFS: preorder numbering + last-descendant numbers -----------
        let mut number = vec![usize::MAX; nblocks]; // block index -> dfs num
        let mut nodes: Vec<BlockId> = Vec::new(); // dfs num -> block
        let mut last: Vec<usize> = Vec::new(); // dfs num -> max dfs num in subtree
        {
            // iterative DFS preorder
            let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
            number[0] = 0;
            nodes.push(BlockId(0));
            last.push(0);
            let mut order_stack: Vec<usize> = vec![0]; // dfs nums on the path
            while let Some(&mut (b, ref mut i)) = stack.last_mut() {
                let succs = f.block(b).successors();
                if *i < succs.len() {
                    let s = succs[*i];
                    *i += 1;
                    if number[s.index()] == usize::MAX {
                        let num = nodes.len();
                        number[s.index()] = num;
                        nodes.push(s);
                        last.push(num);
                        stack.push((s, 0));
                        order_stack.push(num);
                    }
                } else {
                    let num = order_stack.pop().expect("dfs stack imbalance");
                    // propagate subtree max to parent
                    if let Some(&parent) = order_stack.last() {
                        last[parent] = last[parent].max(last[num]);
                    }
                    stack.pop();
                }
            }
        }
        let n = nodes.len(); // reachable blocks only
        let is_ancestor = |w: usize, v: usize, last: &[usize]| -> bool { w <= v && v <= last[w] };

        // --- classify edges ----------------------------------------------
        let preds_all = f.predecessors();
        let mut back_preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut non_back_preds: Vec<HashSet<usize>> = vec![HashSet::new(); n];
        for w in 0..n {
            let wb = nodes[w];
            for &pb in &preds_all[wb.index()] {
                if number[pb.index()] == usize::MAX {
                    continue; // unreachable predecessor
                }
                let v = number[pb.index()];
                if is_ancestor(w, v, &last) {
                    back_preds[w].push(v);
                } else {
                    non_back_preds[w].insert(v);
                }
            }
        }

        // --- Havlak main loop --------------------------------------------
        let mut kind = vec![BbKind::NonHeader; n];
        kind[0] = BbKind::Top;
        let mut uf = UnionFind::new(n);
        let mut header_of: Vec<usize> = vec![0; n]; // dfs num of innermost header
                                                    // loop_body[w] collected when w is a header
        let mut loop_body: Vec<Vec<usize>> = vec![Vec::new(); n];

        for w in (0..n).rev() {
            let mut node_pool: Vec<usize> = Vec::new();
            for &v in &back_preds[w] {
                if v != w {
                    node_pool.push(uf.find(v));
                } else {
                    kind[w] = BbKind::Reducible; // self loop
                }
            }
            let mut work_list = node_pool.clone();
            if !node_pool.is_empty() {
                kind[w] = BbKind::Reducible;
            }
            let mut idx = 0;
            while idx < work_list.len() {
                let x = work_list[idx];
                idx += 1;
                let nbp: Vec<usize> = non_back_preds[x].iter().copied().collect();
                for y in nbp {
                    let ydash = uf.find(y);
                    if !is_ancestor(w, ydash, &last) {
                        // irreducible entry
                        kind[w] = BbKind::Irreducible;
                        non_back_preds[w].insert(ydash);
                    } else if ydash != w && !node_pool.contains(&ydash) {
                        node_pool.push(ydash);
                        work_list.push(ydash);
                    }
                }
            }
            if kind[w] == BbKind::Reducible || kind[w] == BbKind::Irreducible {
                for &x in &node_pool {
                    header_of[x] = w;
                    loop_body[w].push(x);
                    uf.union(x, w);
                }
            }
            let _ = BbKind::Dead; // kinds Top/Dead exist for fidelity with Havlak's paper
        }

        // --- build the forest ---------------------------------------------
        // Create a Loop for every header (dfs order ⇒ outer loops first when
        // iterating ascending, since headers of outer loops have smaller or
        // unrelated dfs numbers — we instead assign parents via header_of
        // chains).
        let mut loop_id_of_header: Vec<Option<LoopId>> = vec![None; n];
        let mut loops: Vec<Loop> = Vec::new();
        for w in 0..n {
            if kind[w] == BbKind::Reducible || kind[w] == BbKind::Irreducible {
                let id = LoopId(loops.len() as u32);
                loop_id_of_header[w] = Some(id);
                loops.push(Loop {
                    header: nodes[w],
                    blocks: vec![nodes[w]],
                    parent: None,
                    depth: 0,
                    reducible: kind[w] == BbKind::Reducible,
                });
            }
        }

        // innermost loop per dfs node: a header's innermost loop is its own;
        // others use header_of (which points at the innermost header after
        // the union-find collapsing), defaulting to none for top-level code.
        let mut innermost_dfs: Vec<Option<LoopId>> = vec![None; n];
        for w in 0..n {
            if let Some(id) = loop_id_of_header[w] {
                innermost_dfs[w] = Some(id);
            } else if header_of[w] != 0 || kind[0] != BbKind::NonHeader {
                // header_of[w] == 0 either means "no loop" or "loop with
                // header at dfs 0"; disambiguate by whether dfs 0 is a header
                // and w is in its body.
                if loop_id_of_header[header_of[w]].is_some() && loop_body[header_of[w]].contains(&w)
                {
                    innermost_dfs[w] = loop_id_of_header[header_of[w]];
                }
            }
        }

        // parent of a loop: innermost loop of its header's header.
        for w in 0..n {
            if let Some(id) = loop_id_of_header[w] {
                let h = header_of[w];
                if loop_id_of_header[h].is_some() && loop_body[h].contains(&w) {
                    loops[id.0 as usize].parent = loop_id_of_header[h];
                }
            }
        }

        // membership: walk each block's innermost chain and add to all
        // enclosing loops.
        for w in 0..n {
            let mut cur = innermost_dfs[w];
            while let Some(id) = cur {
                let lp = &mut loops[id.0 as usize];
                if (lp.header != nodes[w] || innermost_dfs[w] == Some(id))
                    && !lp.blocks.contains(&nodes[w])
                {
                    lp.blocks.push(nodes[w]);
                }
                cur = loops[id.0 as usize].parent;
            }
        }

        // depths
        for i in 0..loops.len() {
            let mut d = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p.0 as usize].parent;
            }
            loops[i].depth = d;
        }

        let mut innermost = vec![None; nblocks];
        for w in 0..n {
            innermost[nodes[w].index()] = innermost_dfs[w];
        }

        LoopForest { loops, innermost }
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether there are no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Get a loop by id.
    pub fn get(&self, id: LoopId) -> &Loop {
        &self.loops[id.0 as usize]
    }

    /// Iterate over `(LoopId, &Loop)`.
    pub fn iter(&self) -> impl Iterator<Item = (LoopId, &Loop)> {
        self.loops
            .iter()
            .enumerate()
            .map(|(i, l)| (LoopId(i as u32), l))
    }

    /// Innermost loop containing `b`, if any.
    pub fn innermost(&self, b: BlockId) -> Option<LoopId> {
        self.innermost.get(b.index()).copied().flatten()
    }

    /// Nesting depth of block `b` (0 = not in a loop).
    pub fn depth_of(&self, b: BlockId) -> u32 {
        self.innermost(b).map(|l| self.get(l).depth).unwrap_or(0)
    }

    /// The back edges `(tail, header)` of a loop: predecessors of the
    /// header that are inside the loop.
    pub fn back_edges(&self, f: &Function, id: LoopId) -> Vec<(BlockId, BlockId)> {
        let lp = self.get(id);
        let preds = f.predecessors();
        preds[lp.header.index()]
            .iter()
            .filter(|p| lp.blocks.contains(p))
            .map(|&p| (p, lp.header))
            .collect()
    }

    /// The entry edges `(outside, header)` of a loop.
    pub fn entry_edges(&self, f: &Function, id: LoopId) -> Vec<(BlockId, BlockId)> {
        let lp = self.get(id);
        let preds = f.predecessors();
        preds[lp.header.index()]
            .iter()
            .filter(|p| !lp.blocks.contains(p))
            .map(|&p| (p, lp.header))
            .collect()
    }

    /// Compute with a dominator tree cross-check (debug aid): for reducible
    /// loops, the header must dominate every block of the loop.
    pub fn verify_against(&self, _f: &Function, dt: &DomTree) -> bool {
        self.loops
            .iter()
            .all(|l| !l.reducible || l.blocks.iter().all(|&b| dt.dominates(l.header, b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::{FuncId, Operand};
    use crate::module::Program;
    use crate::types::ScalarKind;

    fn single_loop() -> (Program, FuncId) {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("f", vec![], i64t);
        pb.define(f, |fb| {
            fb.count_loop(Operand::int(10), |fb, _| {
                fb.iconst(1);
            });
            fb.ret(Some(Operand::int(0)));
        });
        (pb.finish(), f)
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("f", vec![], i64t);
        pb.define(f, |fb| fb.ret(Some(Operand::int(0))));
        let p = pb.finish();
        let lf = LoopForest::compute(p.func(f));
        assert!(lf.is_empty());
        assert_eq!(lf.depth_of(BlockId(0)), 0);
    }

    #[test]
    fn single_loop_recognized() {
        let (p, f) = single_loop();
        let lf = LoopForest::compute(p.func(f));
        assert_eq!(lf.len(), 1);
        let (_, lp) = lf.iter().next().expect("one loop");
        // header is bb1 (loop head), body contains bb2
        assert_eq!(lp.header, BlockId(1));
        assert!(lp.blocks.contains(&BlockId(2)));
        assert!(lp.reducible);
        assert_eq!(lp.depth, 1);
        assert_eq!(lf.depth_of(BlockId(2)), 1);
        assert_eq!(lf.depth_of(BlockId(0)), 0);
        assert_eq!(lf.depth_of(BlockId(3)), 0); // exit
    }

    #[test]
    fn nested_loops() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("f", vec![], i64t);
        pb.define(f, |fb| {
            fb.count_loop(Operand::int(10), |fb, _| {
                fb.count_loop(Operand::int(5), |fb, _| {
                    fb.iconst(1);
                });
            });
            fb.ret(Some(Operand::int(0)));
        });
        let p = pb.finish();
        let func = p.func(f);
        let lf = LoopForest::compute(func);
        assert_eq!(lf.len(), 2);
        let depths: Vec<u32> = lf.iter().map(|(_, l)| l.depth).collect();
        assert!(depths.contains(&1));
        assert!(depths.contains(&2));
        // the depth-2 loop's parent is the depth-1 loop
        let inner = lf.iter().find(|(_, l)| l.depth == 2).expect("inner").0;
        let outer = lf.iter().find(|(_, l)| l.depth == 1).expect("outer").0;
        assert_eq!(lf.get(inner).parent, Some(outer));
        // outer loop contains all inner blocks
        for &b in &lf.get(inner).blocks {
            assert!(lf.get(outer).blocks.contains(&b));
        }
        let dt = DomTree::compute(func);
        assert!(lf.verify_against(func, &dt));
    }

    #[test]
    fn triple_nesting_depths() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("f", vec![], i64t);
        pb.define(f, |fb| {
            fb.count_loop(Operand::int(4), |fb, _| {
                fb.count_loop(Operand::int(4), |fb, _| {
                    fb.count_loop(Operand::int(4), |fb, _| {
                        fb.iconst(1);
                    });
                });
            });
            fb.ret(Some(Operand::int(0)));
        });
        let p = pb.finish();
        let lf = LoopForest::compute(p.func(f));
        assert_eq!(lf.len(), 3);
        let mut depths: Vec<u32> = lf.iter().map(|(_, l)| l.depth).collect();
        depths.sort_unstable();
        assert_eq!(depths, vec![1, 2, 3]);
    }

    #[test]
    fn sequential_loops_are_siblings() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("f", vec![], i64t);
        pb.define(f, |fb| {
            fb.count_loop(Operand::int(10), |fb, _| {
                fb.iconst(1);
            });
            fb.count_loop(Operand::int(10), |fb, _| {
                fb.iconst(2);
            });
            fb.ret(Some(Operand::int(0)));
        });
        let p = pb.finish();
        let lf = LoopForest::compute(p.func(f));
        assert_eq!(lf.len(), 2);
        for (_, l) in lf.iter() {
            assert_eq!(l.depth, 1);
            assert!(l.parent.is_none());
        }
    }

    #[test]
    fn back_and_entry_edges() {
        let (p, f) = single_loop();
        let func = p.func(f);
        let lf = LoopForest::compute(func);
        let (id, lp) = lf.iter().next().expect("loop");
        let be = lf.back_edges(func, id);
        assert_eq!(be.len(), 1);
        assert_eq!(be[0].1, lp.header);
        let ee = lf.entry_edges(func, id);
        assert_eq!(ee.len(), 1);
        assert_eq!(ee[0].0, BlockId(0));
    }

    #[test]
    fn self_loop() {
        use crate::instr::{CmpOp, Instr};
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("f", vec![], i64t);
        pb.define(f, |fb| {
            let body = fb.new_block();
            let exit = fb.new_block();
            fb.jump(body);
            fb.switch_to(body);
            let c = fb.cmp(CmpOp::Lt, Operand::int(0), Operand::int(1));
            fb.push(Instr::Branch {
                cond: c.into(),
                then_bb: body,
                else_bb: exit,
            });
            fb.switch_to(exit);
            fb.ret(Some(Operand::int(0)));
        });
        let p = pb.finish();
        let lf = LoopForest::compute(p.func(f));
        assert_eq!(lf.len(), 1);
        let (_, l) = lf.iter().next().expect("loop");
        assert_eq!(l.header, BlockId(1));
        assert!(l.reducible);
    }

    #[test]
    fn irreducible_loop_detected() {
        use crate::instr::Instr;
        // CFG: 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 1, 1 -> 3 (two-entry cycle 1<->2)
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let f = pb.declare("f", vec![i64t], i64t);
        pb.define(f, |fb| {
            let b1 = fb.new_block();
            let b2 = fb.new_block();
            let b3 = fb.new_block();
            fb.branch(fb.param(0).into(), b1, b2);
            fb.switch_to(b1);
            fb.push(Instr::Branch {
                cond: fb.param(0).into(),
                then_bb: b2,
                else_bb: b3,
            });
            fb.switch_to(b2);
            fb.jump(b1);
            fb.switch_to(b3);
            fb.ret(Some(Operand::int(0)));
        });
        let p = pb.finish();
        let lf = LoopForest::compute(p.func(f));
        assert!(lf.iter().any(|(_, l)| !l.reducible));
    }
}
