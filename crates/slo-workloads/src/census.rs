//! Generic record-type census generator.
//!
//! Nine of the paper's twelve benchmarks (milc, cactusADM, gobmk, povray,
//! calculix, h264avc, lucille, sphinx, ssearch) matter to the evaluation
//! only through their *type census*: how many record types exist, how many
//! pass the strict legality tests, and how many become legal when
//! CSTT/CSTF/ATKN are relaxed (Table 1) — none of them end up transformed
//! (Table 3). This module synthesizes a program with exactly that census:
//!
//! * `legal` clean types: dynamically allocated (twice, so they are not
//!   peelable), every field read in one uniform loop (so no field is cold
//!   or dead — no split, no removal),
//! * `relax - legal` types tripping exactly one of CSTT / CSTF / ATKN
//!   (recoverable by the relaxed analysis),
//! * `types - relax` types tripping a non-recoverable test
//!   (LIBC / IND / MSET / SMAL / external escape, round-robin).

use slo_ir::{CmpOp, Field, FuncId, Operand, Program, ProgramBuilder, ScalarKind, TypeId};

/// The census of one benchmark (one Table 1 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CensusSpec {
    /// Benchmark name.
    pub name: &'static str,
    /// Total record types.
    pub types: usize,
    /// Types legal under the strict analysis.
    pub legal: usize,
    /// Types legal when CSTT/CSTF/ATKN are tolerated.
    pub relax: usize,
}

impl CensusSpec {
    /// Validate internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `legal > relax` or `relax > types`.
    pub fn check(&self) {
        assert!(self.legal <= self.relax, "{}: legal > relax", self.name);
        assert!(self.relax <= self.types, "{}: relax > types", self.name);
    }
}

/// Generate a program realizing the census. `work_scale` controls how much
/// actual work `main` performs (loop trip counts), so census benchmarks
/// also produce non-trivial (if small) performance numbers.
pub fn generate(spec: &CensusSpec, work_scale: u64) -> Program {
    spec.check();
    let mut pb = ProgramBuilder::new();
    let i64t = pb.scalar(ScalarKind::I64);
    let void = pb.void();
    let u8t = pb.scalar(ScalarKind::U8);
    let pu8 = pb.ptr(u8t);

    // shared helper declarations
    let fwrite = pb.libc("fwrite", vec![pu8, i64t], i64t);

    let mut use_funcs: Vec<FuncId> = Vec::new();
    let n_cast = spec.relax - spec.legal;

    for i in 0..spec.types {
        let nfields = 3 + (i % 4); // 3..=6 fields
        let fields: Vec<Field> = (0..nfields)
            .map(|f| Field::new(format!("f{f}"), i64t))
            .collect();
        let (rid, rty) = pb.record(format!("{}_t{}", spec.name, i), fields);
        let prty = pb.ptr(rty);

        let kind = if i < spec.legal {
            TypeKind::Clean
        } else if i < spec.legal + n_cast {
            match (i - spec.legal) % 3 {
                0 => TypeKind::CastFrom,
                1 => TypeKind::CastTo,
                _ => TypeKind::AddrTaken,
            }
        } else {
            match (i - spec.legal - n_cast) % 5 {
                0 => TypeKind::Libc,
                1 => TypeKind::Indirect,
                2 => TypeKind::Memset,
                3 => TypeKind::Small,
                _ => TypeKind::Escape,
            }
        };

        // per-kind auxiliary declarations
        let aux: Option<FuncId> = match kind {
            TypeKind::Indirect => {
                Some(pb.declare(format!("{}_cb{}", spec.name, i), vec![prty], void))
            }
            TypeKind::Escape => {
                Some(pb.external(format!("{}_ext{}", spec.name, i), vec![prty], void))
            }
            _ => None,
        };
        if let Some(f) = aux {
            if pb.program().func(f).is_defined() {
                pb.define(f, |fb| fb.ret(None));
            }
        }

        let fid = pb.declare(format!("{}_use{}", spec.name, i), vec![i64t], i64t);
        use_funcs.push(fid);
        build_use_fn(
            &mut pb,
            fid,
            rid,
            rty,
            prty,
            nfields as u32,
            kind,
            aux,
            fwrite,
            pu8,
        );
    }

    // main: call every use function `work_scale` times, sum results
    let main = pb.declare("main", vec![], i64t);
    pb.define(main, |fb| {
        let sum = fb.fresh();
        fb.assign(sum, Operand::int(0));
        fb.count_loop(Operand::int(work_scale as i64), |fb, i| {
            for &uf in &use_funcs {
                let v = fb.call(uf, vec![i.into()]);
                let ns = fb.add(sum.into(), v.into());
                fb.assign(sum, ns.into());
            }
        });
        fb.ret(Some(sum.into()));
    });

    pb.finish()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TypeKind {
    Clean,
    CastFrom,
    CastTo,
    AddrTaken,
    Libc,
    Indirect,
    Memset,
    Small,
    Escape,
}

#[allow(clippy::too_many_arguments)]
fn build_use_fn(
    pb: &mut ProgramBuilder,
    fid: FuncId,
    rid: slo_ir::RecordId,
    rty: TypeId,
    prty: TypeId,
    nfields: u32,
    kind: TypeKind,
    aux: Option<FuncId>,
    fwrite: FuncId,
    _pu8: TypeId,
) {
    pb.define(fid, |fb| {
        let i64t = fb.types().scalar(ScalarKind::I64);
        let count = 16i64;
        // two allocation sites (defeats peeling while staying legal)
        let a = fb.alloc(rty, Operand::int(count));
        let b = fb.alloc(rty, Operand::int(count));
        let acc = fb.fresh();
        fb.assign(acc, fb.param(0).into());

        // uniform access: every field written then read for both arrays
        for arr in [a, b] {
            fb.count_loop(Operand::int(count), |fb, i| {
                let e = fb.index_addr(arr, rty, i.into());
                for f in 0..nfields {
                    fb.store_field(e.into(), rid, f, i.into());
                    let v = fb.load_field(e.into(), rid, f);
                    let ns = fb.add(acc.into(), v.into());
                    fb.assign(acc, ns.into());
                }
            });
        }

        // the kind-specific construct
        match kind {
            TypeKind::Clean => {}
            TypeKind::CastFrom => {
                let c = fb.cast(a.into(), prty, i64t);
                let ns = fb.add(acc.into(), c.into());
                fb.assign(acc, ns.into());
            }
            TypeKind::CastTo => {
                let raw = fb.iconst(4096);
                let c = fb.cast(raw.into(), i64t, prty);
                let cmp = fb.cmp(CmpOp::Eq, c.into(), a.into());
                let ns = fb.add(acc.into(), cmp.into());
                fb.assign(acc, ns.into());
            }
            TypeKind::AddrTaken => {
                // field address leaks into arithmetic
                let fa = fb.field_addr(a.into(), rid, 0);
                let moved = fb.add(fa.into(), Operand::int(8));
                let v = fb.load(moved.into(), i64t);
                let ns = fb.add(acc.into(), v.into());
                fb.assign(acc, ns.into());
            }
            TypeKind::Libc => {
                // fwrite is declared with a byte-pointer parameter; the FE
                // falls back to the operand's inferred type and records the
                // record escape to a libc function.
                fb.call_void(fwrite, vec![a.into(), Operand::int(64)]);
            }
            TypeKind::Indirect => {
                let cb = aux.expect("indirect kind has a callback");
                let fp = fb.func_addr(cb);
                fb.call_indirect(fp.into(), vec![a.into()], vec![prty]);
            }
            TypeKind::Memset => {
                fb.memset(a.into(), Operand::int(0), Operand::int(32));
            }
            TypeKind::Small => {
                let single = fb.alloc(rty, Operand::int(1));
                fb.store_field(single.into(), rid, 0, Operand::int(1));
                let v = fb.load_field(single.into(), rid, 0);
                let ns = fb.add(acc.into(), v.into());
                fb.assign(acc, ns.into());
                fb.free(single.into());
            }
            TypeKind::Escape => {
                let ext = aux.expect("escape kind has an external");
                fb.call_void(ext, vec![a.into()]);
            }
        }

        fb.free(a.into());
        fb.free(b.into());
        fb.ret(Some(acc.into()));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_analysis::ipa::{analyze_program, LegalityConfig};
    use slo_ir::verify::assert_valid;

    fn spec() -> CensusSpec {
        CensusSpec {
            name: "demo",
            types: 10,
            legal: 2,
            relax: 6,
        }
    }

    #[test]
    fn census_counts_match() {
        let p = generate(&spec(), 1);
        assert_valid(&p);
        assert_eq!(p.types.num_records(), 10);
        let strict = analyze_program(&p, &LegalityConfig::default());
        assert_eq!(strict.num_legal(), 2, "strict legality count");
        let relaxed = analyze_program(
            &p,
            &LegalityConfig {
                relax_cast_addr: true,
                ..Default::default()
            },
        );
        assert_eq!(relaxed.num_legal(), 6, "relaxed legality count");
    }

    #[test]
    fn census_program_runs() {
        let p = generate(&spec(), 1);
        let out = slo_vm::run(&p, &slo_vm::VmOptions::default()).expect("runs");
        assert!(out.stats.instructions > 100);
    }

    #[test]
    fn census_types_not_transformed() {
        let p = generate(&spec(), 1);
        let ipa = analyze_program(&p, &LegalityConfig::default());
        let graphs = slo_analysis::schemes::affinity_graphs(&p, &slo_analysis::WeightScheme::Ispbo);
        let freqs =
            slo_analysis::schemes::block_frequencies(&p, &slo_analysis::WeightScheme::Ispbo);
        let counts = slo_analysis::affinity::build_field_counts(&p, &freqs);
        let plan = slo_transform::decide(
            &p,
            &ipa,
            &graphs,
            &counts,
            &slo_transform::HeuristicsConfig::ispbo(),
        );
        assert_eq!(
            plan.num_transformed(),
            0,
            "census types must stay untransformed"
        );
    }

    #[test]
    #[should_panic(expected = "legal > relax")]
    fn inconsistent_spec_panics() {
        CensusSpec {
            name: "bad",
            types: 5,
            legal: 4,
            relax: 2,
        }
        .check();
    }

    #[test]
    fn zero_hard_types_edge_case() {
        let p = generate(
            &CensusSpec {
                name: "allclean",
                types: 3,
                legal: 3,
                relax: 3,
            },
            1,
        );
        let strict = analyze_program(&p, &LegalityConfig::default());
        assert_eq!(strict.num_legal(), 3);
    }
}
