//! §3.4 case studies and the §2.4 splitting-cost anecdote.
//!
//! * [`spec2006_cpp`] — "a hot structure S with a size larger than an L2
//!   cache line (128 byte)... 4 hot fields in S which were not grouped
//!   together in the class definition. Grouping those fields together
//!   resulted in a performance improvement of 2.5%."
//! * [`spec2006_c`] — "strongly dominated by three loops over an array of
//!   record types containing only two fields, a floating point field and
//!   an 8-byte integer field... Peeling of this type resulted in a
//!   performance improvement of almost 40%. When combined with a higher
//!   unroll factor for the three hot loops... over 80%."
//! * the mcf forced-split experiment lives in the bench crate and reuses
//!   [`crate::mcf`] with [`slo_transform::forced_split`].

use slo_ir::{BinOp, Field, Operand, Program, ProgramBuilder, ScalarKind};

/// The four hot fields of the big C++ struct, scattered across the
/// declaration.
pub const CPP_HOT_FIELDS: [&str; 4] = ["h0", "h1", "h2", "h3"];

/// Build the SPEC2006-C++-like case study: a 20-field (160-byte) struct
/// whose 4 hot fields sit at indices 0, 6, 12 and 18.
pub fn spec2006_cpp(n: i64, iters: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let i64t = pb.scalar(ScalarKind::I64);
    let void = pb.void();

    let mut fields = Vec::new();
    for i in 0..20 {
        let name = match i {
            0 => "h0".to_string(),
            6 => "h1".to_string(),
            12 => "h2".to_string(),
            18 => "h3".to_string(),
            other => format!("c{other}"),
        };
        fields.push(Field::new(name, i64t));
    }
    let (s, s_ty) = pb.record("big_s", fields);
    let ps = pb.ptr(s_ty);
    let hot_idx: Vec<u32> = [0u32, 6, 12, 18].to_vec();

    let hot_pass = pb.declare("hot_pass", vec![ps, i64t], void);
    pb.define(hot_pass, |fb| {
        let arr = fb.param(0);
        let n = fb.param(1);
        fb.count_loop(n.into(), |fb, i| {
            let e = fb.index_addr(arr, s_ty, i.into());
            let mut acc = fb.iconst(0);
            for &f in &hot_idx {
                let v = fb.load_field(e.into(), s, f);
                acc = fb.add(acc.into(), v.into());
            }
            fb.store_field(e.into(), s, 0, acc.into());
        });
        fb.ret(None);
    });

    let main = pb.declare("main", vec![], i64t);
    pb.define(main, |fb| {
        let nn = fb.iconst(n);
        let arr = fb.alloc(s_ty, nn.into());
        // init all fields (cold ones are read once below)
        fb.count_loop(nn.into(), |fb, i| {
            let e = fb.index_addr(arr, s_ty, i.into());
            for f in 0..20u32 {
                fb.store_field(e.into(), s, f, i.into());
            }
        });
        // the bulk of the benchmark: repeated all-field scans that are
        // layout-neutral (every line is touched regardless of field
        // order), so the hot pass is a modest share of the runtime — the
        // paper's +2.5% is a whole-benchmark number
        let sum = fb.fresh();
        fb.assign(sum, Operand::int(0));
        fb.count_loop(Operand::int(iters * 3), |fb, _| {
            fb.count_loop(nn.into(), |fb, i| {
                let e = fb.index_addr(arr, s_ty, i.into());
                for f in 0..20u32 {
                    let v = fb.load_field(e.into(), s, f);
                    let ns = fb.add(sum.into(), v.into());
                    fb.assign(sum, ns.into());
                }
            });
        });
        fb.count_loop(Operand::int(iters), |fb, _| {
            fb.call_void(hot_pass, vec![arr.into(), nn.into()]);
        });
        let e0 = fb.index_addr(arr, s_ty, Operand::int(0));
        let h = fb.load_field(e0.into(), s, 0);
        let total = fb.add(sum.into(), h.into());
        fb.ret(Some(total.into()));
    });

    pb.finish()
}

/// The field order that groups the four hot fields at the front — the
/// advisory recommendation for [`spec2006_cpp`].
pub fn cpp_grouped_order() -> Vec<&'static str> {
    let mut order = vec!["h0", "h1", "h2", "h3"];
    let rest = [
        "c1", "c2", "c3", "c4", "c5", "c7", "c8", "c9", "c10", "c11", "c13", "c14", "c15", "c16",
        "c17", "c19",
    ];
    order.extend(rest);
    order
}

/// Build the SPEC2006-C-like case study: a two-field record (f64 + i64)
/// dominated by three integer loops. `unroll` emits 4 element accesses
/// per loop iteration (the paper's "higher unroll factor" variant that
/// pushes the peeled version past the bandwidth barrier).
pub fn spec2006_c(n: i64, iters: i64, unroll: bool) -> Program {
    let mut pb = ProgramBuilder::new();
    let i64t = pb.scalar(ScalarKind::I64);
    let f64t = pb.scalar(ScalarKind::F64);
    let (pair, pair_ty) = pb.record(
        "fi_pair",
        vec![Field::new("fval", f64t), Field::new("key", i64t)],
    );
    let ppair = pb.ptr(pair_ty);
    let gp = pb.global("PAIRS", ppair);

    // the three dominating integer loops
    let mut loops = Vec::new();
    for (name, op) in [
        ("int_loop_a", BinOp::Add),
        ("int_loop_b", BinOp::Xor),
        ("int_loop_c", BinOp::And),
    ] {
        let fid = pb.declare(name, vec![i64t], i64t);
        pb.define(fid, |fb| {
            let n = fb.param(0);
            let base = fb.load_global(gp);
            let acc = fb.fresh();
            fb.assign(acc, Operand::int(0));
            let step = if unroll { 4i64 } else { 1 };
            let chunks = fb.div(n.into(), Operand::int(step));
            fb.count_loop(chunks.into(), |fb, c| {
                let start = fb.mul(c.into(), Operand::int(step));
                for u in 0..step {
                    let idx = fb.add(start.into(), Operand::int(u));
                    let e = fb.index_addr(base, pair_ty, idx.into());
                    let k = fb.load_field(e.into(), pair, 1);
                    let mixed = fb.bin(op, acc.into(), k.into());
                    fb.assign(acc, mixed.into());
                }
            });
            fb.ret(Some(acc.into()));
        });
        loops.push(fid);
    }

    let main = pb.declare("main", vec![], i64t);
    pb.define(main, |fb| {
        let nn = fb.iconst(n);
        let arr = fb.alloc(pair_ty, nn.into());
        fb.store_global(gp, arr.into());
        let base = fb.load_global(gp);
        fb.count_loop(nn.into(), |fb, i| {
            let e = fb.index_addr(base, pair_ty, i.into());
            fb.store_field(e.into(), pair, 0, Operand::float(0.5));
            fb.store_field(e.into(), pair, 1, i.into());
        });
        // one warm pass reads the float field so it is not dead
        let fsum = fb.fresh();
        fb.assign(fsum, Operand::float(0.0));
        fb.count_loop(nn.into(), |fb, i| {
            let e = fb.index_addr(base, pair_ty, i.into());
            let v = fb.load_field(e.into(), pair, 0);
            let ns = fb.add(fsum.into(), v.into());
            fb.assign(fsum, ns.into());
        });
        let sum = fb.fresh();
        fb.assign(sum, Operand::int(0));
        fb.count_loop(Operand::int(iters), |fb, _| {
            for &l in &loops {
                let v = fb.call(l, vec![nn.into()]);
                let ns = fb.add(sum.into(), v.into());
                fb.assign(sum, ns.into());
            }
        });
        let fi = fb.cast(fsum.into(), f64t, i64t);
        let total = fb.add(sum.into(), fi.into());
        fb.ret(Some(total.into()));
    });

    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_ir::verify::assert_valid;
    use slo_transform::{apply_plan, peel_by_name, reorder_by_names};
    use slo_vm::{run, VmOptions};

    #[test]
    fn cpp_case_builds_and_reorder_preserves_results() {
        let p = spec2006_cpp(2_000, 10);
        assert_valid(&p);
        let q = reorder_by_names(&p, "big_s", &cpp_grouped_order()).expect("reorder");
        assert_valid(&q);
        let before = run(&p, &VmOptions::default()).expect("run before");
        let after = run(&q, &VmOptions::default()).expect("run after");
        assert_eq!(before.exit, after.exit);
    }

    #[test]
    fn cpp_grouping_improves_cycles() {
        let p = spec2006_cpp(20_000, 30);
        let q = reorder_by_names(&p, "big_s", &cpp_grouped_order()).expect("reorder");
        let before = run(&p, &VmOptions::default()).expect("run before");
        let after = run(&q, &VmOptions::default()).expect("run after");
        assert!(
            after.stats.cycles < before.stats.cycles,
            "grouping hot fields must save cycles: {} vs {}",
            after.stats.cycles,
            before.stats.cycles
        );
    }

    #[test]
    fn c_case_peels_and_preserves_results() {
        let p = spec2006_c(4_000, 4, false);
        assert_valid(&p);
        let ipa = slo_analysis::analyze_program(&p, &slo_analysis::LegalityConfig::default());
        let pair = p.types.record_by_name("fi_pair").expect("pair");
        assert!(slo_transform::peelable(&p, pair, &ipa));
        let q = peel_by_name(&p, "fi_pair").expect("peel");
        assert_valid(&q);
        let before = run(&p, &VmOptions::default()).expect("run before");
        let after = run(&q, &VmOptions::default()).expect("run after");
        assert_eq!(before.exit, after.exit);
        assert!(after.stats.cycles < before.stats.cycles);
    }

    #[test]
    fn forced_split_plan_applies_to_case_programs() {
        // sanity: forced_split integrates with apply_plan on a case program
        let p = spec2006_cpp(500, 2);
        let plan = slo_transform::forced_split(&p, "big_s", &["c1", "c2", "c3"]).expect("plan");
        let q = apply_plan(&p, &plan).expect("apply");
        assert_valid(&q);
        let before = run(&p, &VmOptions::default()).expect("before");
        let after = run(&q, &VmOptions::default()).expect("after");
        assert_eq!(before.exit, after.exit);
    }
}
