//! # slo-workloads — the paper's benchmark suite, modeled in IR
//!
//! One entry per Table 1 row of *"Practical Structure Layout Optimization
//! and Advice"* (CGO 2006):
//!
//! * [`mcf`] — 181.mcf with the 15-field `node_t` of Table 2 (splitting),
//! * [`art`] — 179.art's peelable FP array,
//! * [`moldyn`] — the splitting workload with PBO/ISPBO divergence,
//! * [`census`] — the nine open-source benchmarks whose role is their
//!   record-type census (milc, cactusADM, gobmk, povray, calculix,
//!   h264avc, lucille, sphinx, ssearch),
//! * [`casestudy`] — the §3.4 SPEC2006 case studies,
//! * [`kernel`] — the HP-UX-kernel-flavoured multi-threaded advisory
//!   scenario (§3.4's read/write-count discussion).
//!
//! Every workload is a fully executable `slo-ir` program; the bench crate
//! drives them through the pipeline and the VM to regenerate the paper's
//! tables.

#![warn(missing_docs)]

pub mod art;
pub mod casestudy;
pub mod census;
pub mod kernel;
pub mod mcf;
pub mod moldyn;

use census::CensusSpec;
use slo_ir::Program;

/// Which input set a workload is built for (the paper's training vs
/// reference distinction that separates PBO from PPBO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputSet {
    /// The (smaller) training input used to collect profiles.
    Training,
    /// The reference input used for the final measurement.
    Reference,
}

/// The paper's published numbers for one benchmark (for side-by-side
/// reporting; values not printed in the paper are `None`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Table 1: total record types.
    pub types: usize,
    /// Table 1: strictly legal types.
    pub legal: usize,
    /// Table 1: relax-legal types.
    pub relax: usize,
    /// Table 3: transformed types.
    pub transformed: usize,
    /// Table 3: performance impact with PBO (percent).
    pub perf_pbo: Option<f64>,
    /// Table 3: performance impact without PBO (percent).
    pub perf_nopbo: Option<f64>,
}

/// A benchmark: name, program, and the paper's numbers.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (the paper's spelling).
    pub name: &'static str,
    /// The executable program.
    pub program: Program,
    /// Published values for comparison.
    pub paper: PaperRow,
}

/// Census specs for the nine census-only benchmarks (Table 1 rows).
pub const CENSUS_SPECS: [CensusSpec; 9] = [
    CensusSpec {
        name: "milc",
        types: 20,
        legal: 5,
        relax: 12,
    },
    CensusSpec {
        name: "cactusADM",
        types: 116,
        legal: 13,
        relax: 68,
    },
    CensusSpec {
        name: "gobmk",
        types: 59,
        legal: 9,
        relax: 45,
    },
    CensusSpec {
        name: "povray",
        types: 275,
        legal: 14,
        relax: 207,
    },
    CensusSpec {
        name: "calculix",
        types: 41,
        legal: 3,
        relax: 3,
    },
    CensusSpec {
        name: "h264avc",
        types: 42,
        legal: 3,
        relax: 25,
    },
    CensusSpec {
        name: "lucille",
        types: 97,
        legal: 17,
        relax: 86,
    },
    CensusSpec {
        name: "sphinx",
        types: 64,
        legal: 4,
        relax: 52,
    },
    CensusSpec {
        name: "ssearch",
        types: 10,
        legal: 4,
        relax: 5,
    },
];

/// Build every workload of the suite (Table 1 / Table 3 order).
pub fn all(input: InputSet) -> Vec<Workload> {
    let mut out = Vec::with_capacity(12);
    out.push(Workload {
        name: "181.mcf",
        program: mcf::build(input),
        paper: PaperRow {
            types: 5,
            legal: 1,
            relax: 3,
            transformed: 1,
            perf_pbo: Some(17.3),
            perf_nopbo: Some(16.7),
        },
    });
    out.push(Workload {
        name: "179.art",
        program: art::build(input),
        paper: PaperRow {
            types: 3,
            legal: 2,
            relax: 2,
            transformed: 1,
            perf_pbo: None,
            perf_nopbo: Some(78.2),
        },
    });
    for spec in &CENSUS_SPECS {
        // small work scale keeps the census benchmarks cheap to execute
        out.push(Workload {
            name: spec.name,
            program: census::generate(spec, 2),
            paper: PaperRow {
                types: spec.types,
                legal: spec.legal,
                relax: spec.relax,
                transformed: 0,
                perf_pbo: None,
                perf_nopbo: Some(0.0),
            },
        });
    }
    out.push(Workload {
        name: "moldyn",
        program: moldyn::build(input),
        paper: PaperRow {
            types: 4,
            legal: 1,
            relax: 4,
            transformed: 1,
            perf_pbo: Some(30.9),
            perf_nopbo: Some(21.8),
        },
    });
    out
}

/// Build one workload by name (case-insensitive, paper spelling).
pub fn by_name(name: &str, input: InputSet) -> Option<Workload> {
    all(input)
        .into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_benchmarks() {
        let ws = all(InputSet::Training);
        assert_eq!(ws.len(), 12);
        let names: Vec<&str> = ws.iter().map(|w| w.name).collect();
        assert!(names.contains(&"181.mcf"));
        assert!(names.contains(&"179.art"));
        assert!(names.contains(&"moldyn"));
        assert!(names.contains(&"povray"));
    }

    #[test]
    fn census_specs_are_consistent() {
        for s in &CENSUS_SPECS {
            s.check();
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("181.MCF", InputSet::Training).is_some());
        assert!(by_name("nope", InputSet::Training).is_none());
    }

    #[test]
    fn all_programs_verify() {
        for w in all(InputSet::Training) {
            let errs = slo_ir::verify::verify(&w.program);
            assert!(errs.is_empty(), "{}: {errs:?}", w.name);
        }
    }

    #[test]
    fn paper_rows_average_matches_table1() {
        // Table 1's bottom row: 20.9% average legal, 65.7% average relax
        let ws = all(InputSet::Training);
        let avg_legal: f64 = ws
            .iter()
            .map(|w| w.paper.legal as f64 / w.paper.types as f64 * 100.0)
            .sum::<f64>()
            / ws.len() as f64;
        let avg_relax: f64 = ws
            .iter()
            .map(|w| w.paper.relax as f64 / w.paper.types as f64 * 100.0)
            .sum::<f64>()
            / ws.len() as f64;
        assert!((avg_legal - 20.9).abs() < 3.0, "avg legal {avg_legal}");
        assert!((avg_relax - 65.7).abs() < 4.0, "avg relax {avg_relax}");
    }
}
