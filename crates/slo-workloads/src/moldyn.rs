//! moldyn model — the splitting showcase with second-order PBO effects.
//!
//! A molecular-dynamics kernel over an array of `particle` records:
//!
//! * **hot**: positions `x,y,z` (read in the force loop through a random
//!   neighbour index) and forces `fx,fy,fz` (accumulated per pair);
//! * **warm**: velocities `vx,vy,vz` (integrate loop only, ~11% relative
//!   hotness — above both split thresholds);
//! * **boundary bookkeeping** `bflag`, `bcount`: touched only under a
//!   rarely-taken branch inside the integrate loop. A real profile sees
//!   ~2% relative hotness (→ split under PBO's T_s = 3%), but the static
//!   heuristics assume 50% branch probability (→ kept hot under ISPBO) —
//!   this is what makes the PBO build faster than the non-PBO build
//!   (Table 3's 30.9% vs 21.8% pattern);
//! * **cold**: `id`, `box_id`, `flags`, `seed` — setup-only.
//!
//! Census: 4 types, 1 strictly legal, 4 relax-legal (Table 1's moldyn
//! row) — `cellgrid` (CSTT), `vec3tmp` (CSTF) and `nbrhead` (ATKN) are
//! all recoverable.

use crate::InputSet;
use slo_ir::{BinOp, CmpOp, Field, Operand, Program, ProgramBuilder, ScalarKind};

/// Size parameters of the moldyn model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoldynConfig {
    /// Number of particles.
    pub n: i64,
    /// Time steps.
    pub steps: i64,
    /// Neighbours per particle in the force loop.
    pub neighbors: i64,
}

impl MoldynConfig {
    /// Parameters for an input set.
    pub fn for_input(input: InputSet) -> Self {
        match input {
            InputSet::Training => MoldynConfig {
                n: 56_000,
                steps: 8,
                neighbors: 6,
            },
            InputSet::Reference => MoldynConfig {
                n: 64_000,
                steps: 10,
                neighbors: 6,
            },
        }
    }
}

/// The particle fields in declaration order.
pub const PARTICLE_FIELDS: [&str; 15] = [
    "x", "y", "z", "fx", "fy", "fz", "vx", "vy", "vz", "bflag", "bcount", "id", "box_id", "flags",
    "seed",
];

/// Build the moldyn model for an input set.
pub fn build(input: InputSet) -> Program {
    build_config(MoldynConfig::for_input(input))
}

/// Build the moldyn model with explicit parameters.
pub fn build_config(cfg: MoldynConfig) -> Program {
    let mut pb = ProgramBuilder::new();
    let i64t = pb.scalar(ScalarKind::I64);
    let f64t = pb.scalar(ScalarKind::F64);
    let void = pb.void();

    let fields: Vec<Field> = PARTICLE_FIELDS
        .iter()
        .map(|n| {
            if matches!(*n, "bflag" | "bcount" | "id" | "box_id" | "flags" | "seed") {
                Field::new(*n, i64t)
            } else {
                Field::new(*n, f64t)
            }
        })
        .collect();
    let (part, part_ty) = pb.record("particle", fields);
    let ppart = pb.ptr(part_ty);

    let (cellgrid, cellgrid_ty) = pb.record(
        "cellgrid",
        vec![Field::new("head", i64t), Field::new("count", i64t)],
    );
    let pcell = pb.ptr(cellgrid_ty);
    let (vec3, vec3_ty) = pb.record(
        "vec3tmp",
        vec![
            Field::new("a", f64t),
            Field::new("b", f64t),
            Field::new("c", f64t),
        ],
    );
    let pvec3 = pb.ptr(vec3_ty);
    let (nbr, nbr_ty) = pb.record(
        "nbrhead",
        vec![Field::new("first", i64t), Field::new("len", i64t)],
    );

    let pf = |name: &str| -> u32 {
        PARTICLE_FIELDS
            .iter()
            .position(|f| *f == name)
            .expect("known particle field") as u32
    };

    // ---- init -------------------------------------------------------------
    let init = pb.declare("md_init", vec![ppart, i64t], void);
    pb.define(init, |fb| {
        let parts = fb.param(0);
        let n = fb.param(1);
        fb.count_loop(n.into(), |fb, i| {
            let e = fb.index_addr(parts, part_ty, i.into());
            for f in ["x", "y", "z"] {
                fb.store_field(e.into(), part, pf(f), Operand::float(1.0));
            }
            for f in ["fx", "fy", "fz", "vx", "vy", "vz"] {
                fb.store_field(e.into(), part, pf(f), Operand::float(0.0));
            }
            fb.store_field(e.into(), part, pf("bflag"), Operand::int(0));
            fb.store_field(e.into(), part, pf("bcount"), Operand::int(0));
            fb.store_field(e.into(), part, pf("id"), i.into());
            let b = fb.bin(BinOp::Rem, i.into(), Operand::int(64));
            fb.store_field(e.into(), part, pf("box_id"), b.into());
            fb.store_field(e.into(), part, pf("flags"), Operand::int(1));
            fb.store_field(e.into(), part, pf("seed"), i.into());
        });
        // setup-only reads of the cold fields (so they are not dead)
        fb.count_loop(n.into(), |fb, i| {
            let e = fb.index_addr(parts, part_ty, i.into());
            let id = fb.load_field(e.into(), part, pf("id"));
            let bx = fb.load_field(e.into(), part, pf("box_id"));
            let fl = fb.load_field(e.into(), part, pf("flags"));
            let sd = fb.load_field(e.into(), part, pf("seed"));
            let s1 = fb.add(id.into(), bx.into());
            let s2 = fb.add(fl.into(), sd.into());
            let s3 = fb.add(s1.into(), s2.into());
            let c = fb.cmp(CmpOp::Lt, s3.into(), Operand::int(0));
            fb.if_then(c.into(), |fb| {
                fb.store_field(e.into(), part, pf("flags"), Operand::int(0));
            });
        });
        fb.ret(None);
    });

    // ---- force loop ---------------------------------------------------------
    let forces = pb.declare("md_forces", vec![ppart, i64t, i64t, i64t], void);
    pb.define(forces, |fb| {
        let parts = fb.param(0);
        let n = fb.param(1);
        let nbrs = fb.param(2);
        let step = fb.param(3);
        fb.count_loop(n.into(), |fb, i| {
            let e = fb.index_addr(parts, part_ty, i.into());
            let xi = fb.load_field(e.into(), part, pf("x"));
            let yi = fb.load_field(e.into(), part, pf("y"));
            let zi = fb.load_field(e.into(), part, pf("z"));
            let fx0 = fb.load_field(e.into(), part, pf("fx"));
            let acc = fb.fresh();
            fb.assign(acc, fx0.into());
            fb.count_loop(nbrs.into(), |fb, k| {
                // pseudo-random neighbour, re-randomized every time step
                let mixed = fb.mul(i.into(), Operand::int(2654435761));
                let smix = fb.mul(step.into(), Operand::int(40_503));
                let mixed1 = fb.add(mixed.into(), smix.into());
                let mixed2 = fb.add(mixed1.into(), k.into());
                let masked = fb.bin(BinOp::And, mixed2.into(), Operand::int(0x7fff_ffff));
                let j = fb.bin(BinOp::Rem, masked.into(), n.into());
                let ej = fb.index_addr(parts, part_ty, j.into());
                let xj = fb.load_field(ej.into(), part, pf("x"));
                let yj = fb.load_field(ej.into(), part, pf("y"));
                let zj = fb.load_field(ej.into(), part, pf("z"));
                let dx = fb.sub(xi.into(), xj.into());
                let dy = fb.sub(yi.into(), yj.into());
                let dz = fb.sub(zi.into(), zj.into());
                let r1 = fb.mul(dx.into(), dx.into());
                let r2 = fb.mul(dy.into(), dy.into());
                let r3 = fb.mul(dz.into(), dz.into());
                let s = fb.add(r1.into(), r2.into());
                let s2 = fb.add(s.into(), r3.into());
                let na = fb.add(acc.into(), s2.into());
                fb.assign(acc, na.into());
            });
            fb.store_field(e.into(), part, pf("fx"), acc.into());
            let fy = fb.load_field(e.into(), part, pf("fy"));
            let nfy = fb.add(fy.into(), acc.into());
            fb.store_field(e.into(), part, pf("fy"), nfy.into());
            let fz = fb.load_field(e.into(), part, pf("fz"));
            let nfz = fb.add(fz.into(), acc.into());
            fb.store_field(e.into(), part, pf("fz"), nfz.into());
        });
        fb.ret(None);
    });

    // ---- boundary handler (called from a rare branch) -----------------------
    // A separate function so its field references form their own affinity
    // group weighted by the *call* frequency: real profiles make it cold,
    // the 50% static branch heuristic keeps it hot (the PBO/ISPBO split
    // divergence described in the module docs).
    let boundary = pb.declare("md_boundary", vec![ppart], void);
    pb.define(boundary, |fb| {
        let e = fb.param(0);
        let bf = fb.load_field(e.into(), part, pf("bflag"));
        let nb = fb.bin(BinOp::Xor, bf.into(), Operand::int(1));
        fb.store_field(e.into(), part, pf("bflag"), nb.into());
        let bc = fb.load_field(e.into(), part, pf("bcount"));
        let nbc = fb.add(bc.into(), Operand::int(1));
        fb.store_field(e.into(), part, pf("bcount"), nbc.into());
        fb.ret(None);
    });

    // ---- integrate loop -----------------------------------------------------
    let integrate = pb.declare("md_integrate", vec![ppart, i64t], void);
    pb.define(integrate, |fb| {
        let parts = fb.param(0);
        let n = fb.param(1);
        fb.count_loop(n.into(), |fb, i| {
            let e = fb.index_addr(parts, part_ty, i.into());
            for (pos, vel, force) in [("x", "vx", "fx"), ("y", "vy", "fy"), ("z", "vz", "fz")] {
                let v = fb.load_field(e.into(), part, pf(vel));
                let f = fb.load_field(e.into(), part, pf(force));
                let scaled = fb.mul(f.into(), Operand::float(0.0001));
                let nv = fb.add(v.into(), scaled.into());
                fb.store_field(e.into(), part, pf(vel), nv.into());
                let p = fb.load_field(e.into(), part, pf(pos));
                let np = fb.add(p.into(), nv.into());
                fb.store_field(e.into(), part, pf(pos), np.into());
            }
            // rarely-taken boundary branch (~1.5% of particles): real
            // profiles see the callee cold, the 50% static heuristic
            // does not
            let m = fb.bin(BinOp::Rem, i.into(), Operand::int(64));
            let is_boundary = fb.cmp(CmpOp::Eq, m.into(), Operand::int(0));
            fb.if_then(is_boundary.into(), |fb| {
                fb.call_void(boundary, vec![e.into()]);
            });
        });
        fb.ret(None);
    });

    // ---- the relax-recoverable types ---------------------------------------
    let aux = pb.declare("md_aux", vec![], i64t);
    pb.define(aux, |fb| {
        // cellgrid: CSTT (int -> ptr cast)
        let raw = fb.iconst(0x2000);
        let cg = fb.cast(raw.into(), i64t, pcell);
        let cells = fb.alloc(cellgrid_ty, Operand::int(64));
        fb.store_field(cells.into(), cellgrid, 0, Operand::int(1));
        fb.store_field(cells.into(), cellgrid, 1, Operand::int(2));
        let h = fb.load_field(cells.into(), cellgrid, 0);
        let c = fb.load_field(cells.into(), cellgrid, 1);
        let eq = fb.cmp(CmpOp::Eq, cg.into(), cells.into());
        // vec3tmp: CSTF
        let v3 = fb.alloc(vec3_ty, Operand::int(8));
        for f in 0..3 {
            fb.store_field(v3.into(), vec3, f, Operand::float(0.5));
        }
        let a0 = fb.load_field(v3.into(), vec3, 0);
        let a1 = fb.load_field(v3.into(), vec3, 1);
        let a2 = fb.load_field(v3.into(), vec3, 2);
        let castv_raw = fb.cast(v3.into(), pvec3, i64t);
        // keep only an address-independent bit of the cast result so the
        // checksum does not depend on heap layout
        let castv = fb.cmp(CmpOp::Ne, castv_raw.into(), Operand::int(0));
        // nbrhead: ATKN
        let nb = fb.alloc(nbr_ty, Operand::int(16));
        fb.store_field(nb.into(), nbr, 0, Operand::int(3));
        fb.store_field(nb.into(), nbr, 1, Operand::int(4));
        let fa = fb.field_addr(nb.into(), nbr, 0);
        let moved = fb.add(fa.into(), Operand::int(8));
        let peek = fb.load(moved.into(), i64t);
        let l0 = fb.load_field(nb.into(), nbr, 0);
        let l1 = fb.load_field(nb.into(), nbr, 1);
        // combine everything so nothing is dead
        let s0 = fb.add(h.into(), c.into());
        let s1 = fb.add(s0.into(), eq.into());
        let fsum1 = fb.add(a0.into(), a1.into());
        let fsum2 = fb.add(fsum1.into(), a2.into());
        let fint = fb.cast(fsum2.into(), f64t, i64t);
        let s2 = fb.add(s1.into(), fint.into());
        let s3 = fb.add(s2.into(), castv.into());
        let s4 = fb.add(s3.into(), peek.into());
        let s5 = fb.add(s4.into(), l0.into());
        let s6 = fb.add(s5.into(), l1.into());
        fb.free(cells.into());
        fb.free(v3.into());
        fb.free(nb.into());
        fb.ret(Some(s6.into()));
    });

    // ---- main ----------------------------------------------------------------
    let main = pb.declare("main", vec![], f64t);
    pb.define(main, |fb| {
        let n = fb.iconst(cfg.n);
        let parts = fb.alloc(part_ty, n.into());
        fb.call_void(init, vec![parts.into(), n.into()]);
        let auxv = fb.call(aux, vec![]);
        fb.count_loop(Operand::int(cfg.steps), |fb, st| {
            fb.call_void(
                forces,
                vec![
                    parts.into(),
                    n.into(),
                    Operand::int(cfg.neighbors),
                    st.into(),
                ],
            );
            fb.call_void(integrate, vec![parts.into(), n.into()]);
        });
        // checksum
        let sum = fb.fresh();
        fb.assign(sum, Operand::float(0.0));
        fb.count_loop(n.into(), |fb, i| {
            let e = fb.index_addr(parts, part_ty, i.into());
            let x = fb.load_field(e.into(), part, pf("x"));
            let ns = fb.add(sum.into(), x.into());
            fb.assign(sum, ns.into());
        });
        let total = fb.add(sum.into(), auxv.into());
        fb.ret(Some(total.into()));
    });

    pb.finish()
}

/// Helper used by tests and the moldyn profile example: index of a
/// particle field.
pub fn particle_field(name: &str) -> u32 {
    PARTICLE_FIELDS
        .iter()
        .position(|f| *f == name)
        .expect("known particle field") as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_analysis::ipa::{analyze_program, LegalityConfig};
    use slo_ir::verify::assert_valid;

    fn small() -> Program {
        // enough steps that the one-time init loop does not inflate the
        // relative hotness of the boundary/cold fields
        build_config(MoldynConfig {
            n: 1_500,
            steps: 12,
            neighbors: 6,
        })
    }

    #[test]
    fn builds_and_verifies() {
        let p = small();
        assert_valid(&p);
        assert_eq!(p.types.num_records(), 4);
    }

    #[test]
    fn table1_census() {
        let p = small();
        let strict = analyze_program(&p, &LegalityConfig::default());
        assert_eq!(strict.num_legal(), 1, "moldyn: 1 strictly legal type");
        let particle = p.types.record_by_name("particle").expect("particle");
        assert!(strict.verdict(particle).legal());
        let relaxed = analyze_program(
            &p,
            &LegalityConfig {
                relax_cast_addr: true,
                ..Default::default()
            },
        );
        assert_eq!(relaxed.num_legal(), 4, "moldyn: all 4 relax-legal");
    }

    #[test]
    fn pbo_sees_boundary_fields_cold_ispbo_does_not() {
        let p = small();
        let out = slo_vm::run(&p, &slo_vm::VmOptions::profiling()).expect("run");
        let particle = p.types.record_by_name("particle").expect("particle");
        let pbo = slo_analysis::relative_hotness(
            &p,
            particle,
            &slo_analysis::WeightScheme::Pbo(&out.feedback),
        );
        let ispbo =
            slo_analysis::relative_hotness(&p, particle, &slo_analysis::WeightScheme::Ispbo);
        let bflag = particle_field("bflag") as usize;
        assert!(
            pbo[bflag] < 3.0,
            "real profile sees boundary fields cold: {}",
            pbo[bflag]
        );
        assert!(
            ispbo[bflag] > 7.5,
            "static heuristics overestimate the branch: {}",
            ispbo[bflag]
        );
    }

    #[test]
    fn cold_fields_are_cold_under_both() {
        let p = small();
        let out = slo_vm::run(&p, &slo_vm::VmOptions::profiling()).expect("run");
        let particle = p.types.record_by_name("particle").expect("particle");
        for scheme in [
            slo_analysis::WeightScheme::Pbo(&out.feedback),
            slo_analysis::WeightScheme::Ispbo,
        ] {
            let rel = slo_analysis::relative_hotness(&p, particle, &scheme);
            for f in ["id", "box_id", "flags", "seed"] {
                let v = rel[particle_field(f) as usize];
                assert!(v < 7.5, "{} must be cold under {}: {v}", f, scheme.name());
            }
            // positions stay hot
            assert!(rel[particle_field("x") as usize] > 50.0);
        }
    }
}
