//! A kernel-flavoured workload for the multi-threaded advisory heuristics.
//!
//! §3.4: "Currently the affinity information is used by the HP-UX kernel
//! group to improve their structure definitions... Since the kernel is a
//! highly multi-threaded application, the analysis benefits heavily from
//! the presence of the read/write counts."
//!
//! The model: a per-connection descriptor whose *statistics* fields are
//! written on every operation (one writer path) while its *configuration*
//! fields are only read (many reader paths). Both groups are hot, so the
//! hotness-based splitter keeps them together — but the §3.3
//! classification flags the write/read mix as a false-sharing risk, the
//! advice the paper reports giving the kernel team.

use slo_ir::{BinOp, Field, Operand, Program, ProgramBuilder, ScalarKind};

/// Names of the descriptor fields, in declaration order.
pub const CONN_FIELDS: [&str; 8] = [
    "cfg_mtu",
    "stat_packets",
    "cfg_flags",
    "stat_bytes",
    "cfg_timeout",
    "stat_errors",
    "cfg_owner",
    "stat_drops",
];

/// Build the kernel-like program: `n` descriptors, `ops` operations.
pub fn build(n: i64, ops: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let i64t = pb.scalar(ScalarKind::I64);
    let void = pb.void();
    let fields: Vec<Field> = CONN_FIELDS.iter().map(|f| Field::new(*f, i64t)).collect();
    let (conn, conn_ty) = pb.record("conn", fields);
    let pconn = pb.ptr(conn_ty);

    let fidx = |name: &str| -> u32 {
        CONN_FIELDS
            .iter()
            .position(|f| *f == name)
            .expect("known conn field") as u32
    };

    // the writer path: bumps every stat_* field
    let writer = pb.declare("conn_update_stats", vec![pconn], void);
    pb.define(writer, |fb| {
        let c = fb.param(0);
        for f in ["stat_packets", "stat_bytes", "stat_errors", "stat_drops"] {
            let v = fb.load_field(c.into(), conn, fidx(f));
            let nv = fb.add(v.into(), Operand::int(1));
            fb.store_field(c.into(), conn, fidx(f), nv.into());
        }
        fb.ret(None);
    });

    // the reader path: consults every cfg_* field
    let reader = pb.declare("conn_route", vec![pconn], i64t);
    pb.define(reader, |fb| {
        let c = fb.param(0);
        let acc = fb.fresh();
        fb.assign(acc, Operand::int(0));
        for f in ["cfg_mtu", "cfg_flags", "cfg_timeout", "cfg_owner"] {
            let v = fb.load_field(c.into(), conn, fidx(f));
            let ns = fb.add(acc.into(), v.into());
            fb.assign(acc, ns.into());
        }
        fb.ret(Some(acc.into()));
    });

    let main = pb.declare("main", vec![], i64t);
    pb.define(main, |fb| {
        let nn = fb.iconst(n);
        let conns = fb.alloc(conn_ty, nn.into());
        fb.count_loop(nn.into(), |fb, i| {
            let e = fb.index_addr(conns, conn_ty, i.into());
            for f in 0..CONN_FIELDS.len() as u32 {
                fb.store_field(e.into(), conn, f, i.into());
            }
        });
        let sum = fb.fresh();
        fb.assign(sum, Operand::int(0));
        fb.count_loop(Operand::int(ops), |fb, op| {
            let masked = fb.bin(BinOp::And, op.into(), Operand::int(0x7fff_ffff));
            let idx = fb.bin(BinOp::Rem, masked.into(), nn.into());
            let e = fb.index_addr(conns, conn_ty, idx.into());
            // every op reads the config and updates the stats — in the
            // real kernel these run on different CPUs
            fb.call_void(writer, vec![e.into()]);
            let r = fb.call(reader, vec![e.into()]);
            let ns = fb.add(sum.into(), r.into());
            fb.assign(sum, ns.into());
        });
        fb.ret(Some(sum.into()));
    });

    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo::advisor::{classify, Advice, ScenarioConfig};
    use slo_analysis::schemes::{affinity_graphs, block_frequencies, WeightScheme};

    #[test]
    fn builds_runs_and_flags_false_sharing() {
        let p = build(512, 4_000);
        slo_ir::verify::assert_valid(&p);
        let out = slo_vm::run(&p, &slo_vm::VmOptions::profiling()).expect("run");
        let scheme = WeightScheme::Pbo(&out.feedback);
        let graphs = affinity_graphs(&p, &scheme);
        let freqs = block_frequencies(&p, &scheme);
        let counts = slo_analysis::affinity::build_field_counts(&p, &freqs);
        let conn = p.types.record_by_name("conn").expect("conn");
        let advice = classify(
            &p,
            conn,
            &graphs[&conn],
            &counts,
            None,
            &ScenarioConfig::default(),
        );
        let fs = advice.iter().find_map(|a| match a {
            Advice::FalseSharingRisk {
                written,
                read_mostly,
            } => Some((written.clone(), read_mostly.clone())),
            _ => None,
        });
        let (written, read_mostly) = fs.expect("false-sharing advice expected");
        // every stat field is in the written set, every cfg field in the
        // read-mostly set
        for f in ["stat_packets", "stat_bytes", "stat_errors", "stat_drops"] {
            let i = CONN_FIELDS.iter().position(|x| *x == f).expect("field") as u32;
            assert!(written.contains(&i), "{f} should be written-hot");
        }
        for f in ["cfg_mtu", "cfg_flags", "cfg_timeout", "cfg_owner"] {
            let i = CONN_FIELDS.iter().position(|x| *x == f).expect("field") as u32;
            assert!(read_mostly.contains(&i), "{f} should be read-mostly");
        }
    }

    #[test]
    fn hotness_keeps_both_groups_hot() {
        // the automatic splitter must NOT separate them (both hot) — this
        // is exactly why the paper routes the case through the advisor
        let p = build(512, 4_000);
        let conn = p.types.record_by_name("conn").expect("conn");
        let out = slo_vm::run(&p, &slo_vm::VmOptions::profiling()).expect("run");
        let rel = slo_analysis::relative_hotness(
            &p,
            conn,
            &slo_analysis::WeightScheme::Pbo(&out.feedback),
        );
        for v in &rel {
            assert!(*v > 50.0, "all fields hot: {rel:?}");
        }
    }
}
