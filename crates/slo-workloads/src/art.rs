//! 179.art model — the peeling showcase.
//!
//! The SPEC2000 FP benchmark the paper peels: "a dynamically allocated
//! array of structures containing only floating point fields (and a
//! non-recursive pointer). The result of the dynamic allocation is
//! assigned to a global pointer variable P; no other local or global
//! pointers or variables of that type exist." (§2.1)
//!
//! Our model:
//!
//! * `f1_neuron` — eight `f64` fields, one allocation published through
//!   the global `F1`; the training loops sweep the whole array many times
//!   touching only one or two fields per pass, so peeling turns each pass
//!   from a 64-byte-stride walk into a dense array walk (the +78.2%
//!   mechanism);
//! * `f2_neuron` — clean but unprofitable (two allocation sites, all
//!   fields uniformly hot);
//! * `xcess` — blocked by MSET (hard invalid).
//!
//! Census: 3 types, 2 legal, 2 relax-legal (Table 1's 179.art row).

use crate::InputSet;
use slo_ir::{Field, Operand, Program, ProgramBuilder, ScalarKind};

/// Size parameters of the art model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtConfig {
    /// Number of F1-layer neurons.
    pub n: i64,
    /// Training passes over the array.
    pub passes: i64,
}

impl ArtConfig {
    /// Parameters for an input set.
    pub fn for_input(input: InputSet) -> Self {
        match input {
            InputSet::Training => ArtConfig {
                n: 100_000,
                passes: 12,
            },
            InputSet::Reference => ArtConfig {
                n: 140_000,
                passes: 12,
            },
        }
    }
}

/// The F1 neuron fields.
pub const F1_FIELDS: [&str; 8] = ["fI", "fW", "fX", "fV", "fU", "fP", "fQ", "fR"];

/// Build the art model program for an input set.
pub fn build(input: InputSet) -> Program {
    build_config(ArtConfig::for_input(input))
}

/// Build the art model program with explicit parameters.
pub fn build_config(cfg: ArtConfig) -> Program {
    let mut pb = ProgramBuilder::new();
    let i64t = pb.scalar(ScalarKind::I64);
    let f64t = pb.scalar(ScalarKind::F64);
    let void = pb.void();

    let (f1, f1_ty) = pb.record(
        "f1_neuron",
        F1_FIELDS.iter().map(|n| Field::new(*n, f64t)).collect(),
    );
    let pf1 = pb.ptr(f1_ty);
    let (f2, f2_ty) = pb.record(
        "f2_neuron",
        vec![Field::new("y", f64t), Field::new("r", f64t)],
    );
    let (xcess, xcess_ty) = pb.record(
        "xcess",
        vec![Field::new("buf", f64t), Field::new("len", i64t)],
    );

    let gf1 = pb.global("F1", pf1);

    // one pass: sweep the array reading `loads` and storing into `store`.
    // The passes chain (each consumes what the previous produced), so no
    // field is dead and the automatic dead-field removal stays out of the
    // picture — the measured effect is peeling alone.
    let mut pass_fns = Vec::new();
    for (name, loads, store) in [
        ("pass_compute_x", vec!["fI"], "fX"),
        ("pass_norm_w", vec!["fX"], "fW"),
        ("pass_update_u", vec!["fW", "fV"], "fU"),
        ("pass_match_p", vec!["fU"], "fP"),
        ("pass_reset_r", vec!["fP", "fQ"], "fR"),
    ] {
        let fid = pb.declare(name, vec![i64t], void);
        pb.define(fid, |fb| {
            let n = fb.param(0);
            let base = fb.load_global(gf1);
            fb.count_loop(n.into(), |fb, i| {
                let e = fb.index_addr(base, f1_ty, i.into());
                let fidx = |f: &str| {
                    F1_FIELDS
                        .iter()
                        .position(|x| x == &f)
                        .expect("known f1 field") as u32
                };
                let mut acc = fb.fconst(0.0);
                for l in &loads {
                    let v = fb.load_field(e.into(), f1, fidx(l));
                    acc = fb.add(acc.into(), v.into());
                }
                let nv = fb.mul(acc.into(), Operand::float(1.0000001));
                fb.store_field(e.into(), f1, fidx(store), nv.into());
            });
            fb.ret(None);
        });
        pass_fns.push(fid);
    }

    // f2: clean but unprofitable (two allocs, uniform access)
    let f2_use = pb.declare("f2_use", vec![i64t], f64t);
    pb.define(f2_use, |fb| {
        let n = fb.param(0);
        let a = fb.alloc(f2_ty, n.into());
        let b = fb.alloc(f2_ty, n.into());
        let acc = fb.fresh();
        fb.assign(acc, Operand::float(0.0));
        for arr in [a, b] {
            fb.count_loop(n.into(), |fb, i| {
                let e = fb.index_addr(arr, f2_ty, i.into());
                fb.store_field(e.into(), f2, 0, Operand::float(1.5));
                fb.store_field(e.into(), f2, 1, Operand::float(2.5));
                let y = fb.load_field(e.into(), f2, 0);
                let r = fb.load_field(e.into(), f2, 1);
                let s = fb.add(y.into(), r.into());
                let ns = fb.add(acc.into(), s.into());
                fb.assign(acc, ns.into());
            });
        }
        fb.free(a.into());
        fb.free(b.into());
        fb.ret(Some(acc.into()));
    });

    // xcess: MSET violation
    let xcess_use = pb.declare("xcess_use", vec![], void);
    pb.define(xcess_use, |fb| {
        let x = fb.alloc(xcess_ty, Operand::int(8));
        fb.memset(x.into(), Operand::int(0), Operand::int(64));
        fb.store_field(x.into(), xcess, 1, Operand::int(3));
        let v = fb.load_field(x.into(), xcess, 1);
        let b = fb.load_field(x.into(), xcess, 0);
        let s = fb.add(v.into(), b.into());
        let _ = fb.add(s.into(), Operand::int(0));
        fb.free(x.into());
        fb.ret(None);
    });

    let main = pb.declare("main", vec![], f64t);
    pb.define(main, |fb| {
        let n = fb.iconst(cfg.n);
        let arr = fb.alloc(f1_ty, n.into());
        fb.store_global(gf1, arr.into());
        // initialize every field
        let base = fb.load_global(gf1);
        fb.count_loop(n.into(), |fb, i| {
            let e = fb.index_addr(base, f1_ty, i.into());
            for f in 0..F1_FIELDS.len() as u32 {
                fb.store_field(e.into(), f1, f, Operand::float(1.0));
            }
            let _ = i;
        });
        // training passes
        fb.count_loop(Operand::int(cfg.passes), |fb, _| {
            for &p in &pass_fns {
                fb.call_void(p, vec![n.into()]);
            }
        });
        let f2v = fb.call(f2_use, vec![Operand::int(256)]);
        fb.call_void(xcess_use, vec![]);
        // checksum over one field
        let sum = fb.fresh();
        fb.assign(sum, Operand::float(0.0));
        let base2 = fb.load_global(gf1);
        fb.count_loop(n.into(), |fb, i| {
            let e = fb.index_addr(base2, f1_ty, i.into());
            let widx = F1_FIELDS
                .iter()
                .position(|x| *x == "fW")
                .expect("fW exists") as u32;
            let ridx = F1_FIELDS
                .iter()
                .position(|x| *x == "fR")
                .expect("fR exists") as u32;
            let v = fb.load_field(e.into(), f1, widx);
            let r = fb.load_field(e.into(), f1, ridx);
            let s1 = fb.add(v.into(), r.into());
            let ns = fb.add(sum.into(), s1.into());
            fb.assign(sum, ns.into());
        });
        let total = fb.add(sum.into(), f2v.into());
        fb.ret(Some(total.into()));
    });

    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_analysis::ipa::{analyze_program, LegalityConfig};
    use slo_ir::verify::assert_valid;

    fn small() -> Program {
        build_config(ArtConfig {
            n: 2_000,
            passes: 3,
        })
    }

    #[test]
    fn builds_and_verifies() {
        let p = small();
        assert_valid(&p);
        assert_eq!(p.types.num_records(), 3);
    }

    #[test]
    fn table1_census() {
        let p = small();
        let strict = analyze_program(&p, &LegalityConfig::default());
        assert_eq!(strict.num_legal(), 2, "art: 2 legal types");
        let relaxed = analyze_program(
            &p,
            &LegalityConfig {
                relax_cast_addr: true,
                ..Default::default()
            },
        );
        assert_eq!(relaxed.num_legal(), 2, "art: relax changes nothing");
    }

    #[test]
    fn f1_is_peelable() {
        let p = small();
        let ipa = analyze_program(&p, &LegalityConfig::default());
        let f1 = p.types.record_by_name("f1_neuron").expect("f1");
        assert!(slo_transform::peelable(&p, f1, &ipa));
        let f2 = p.types.record_by_name("f2_neuron").expect("f2");
        assert!(!slo_transform::peelable(&p, f2, &ipa));
    }
}
