//! 181.mcf model — the paper's flagship workload.
//!
//! Reproduces the structure of the SPEC2000 network-simplex benchmark at
//! the level the paper's evaluation depends on:
//!
//! * **five record types** (Table 1 row: 5 / 1 legal / 3 relax):
//!   `node` (clean), `arc` (ATKN — relax-recoverable), `basket`
//!   (CSTF — relax-recoverable), `network` (LIBC — hard),
//!   `stats` (MSET — hard);
//! * **`node` with the 15 fields of Table 2**, accessed by per-simplex-
//!   iteration phase functions whose loop trip counts are proportioned to
//!   the paper's PBO hotness column (`potential` 100%, `pred` 73.7%,
//!   `mark` 53.3%, `basic_arc` 39.9%, `time` 33.7%, `orientation` 23.2%,
//!   `child` 20.8%, `sibling` 20.7%, `depth` 3.1%, `flow` 2.8%, rare
//!   fields below 1%, `ident` unused);
//! * **miss-profile shaping**: `potential` and `time` are reached through
//!   pointer chases / random indices (high d-cache miss share), while
//!   `pred`/`mark` are touched sequentially (low miss share despite high
//!   hotness) — the reason the paper's DMISS column correlates poorly
//!   with true hotness;
//! * the **hot phase functions are called from `main`'s simplex loop**
//!   while the rare-field code is called once, so inter-procedural
//!   scaling (ISPBO) separates hot from cold where per-procedure SPBO
//!   cannot — Table 2's r ordering.

use crate::InputSet;
use slo_ir::{CmpOp, Field, FuncId, Operand, Program, ProgramBuilder, Reg, ScalarKind};

/// Size parameters of the mcf model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McfConfig {
    /// Number of network nodes.
    pub n: i64,
    /// Simplex iterations.
    pub iters: i64,
    /// Phase-mix skew in per-mille applied to the loop trip fractions.
    /// The reference input runs a slightly different phase mix than the
    /// training input (the paper's PBO-vs-PPBO imperfection: r = 0.986,
    /// not 1.0).
    pub skew: i64,
}

impl McfConfig {
    /// Parameters for an input set (training is smaller, the paper's
    /// PBO-vs-PPBO distinction).
    pub fn for_input(input: InputSet) -> Self {
        match input {
            InputSet::Training => McfConfig {
                n: 57_000,
                iters: 60,
                skew: 0,
            },
            InputSet::Reference => McfConfig {
                n: 70_000,
                iters: 60,
                skew: 1,
            },
        }
    }
}

/// Field indices of `node`, in declaration order (Table 2 order).
pub const NODE_FIELDS: [&str; 15] = [
    "number",
    "ident",
    "pred",
    "child",
    "sibling",
    "sibling_prev",
    "depth",
    "orientation",
    "basic_arc",
    "firstout",
    "firstin",
    "potential",
    "flow",
    "mark",
    "time",
];

/// The paper's Table 2 PBO column (relative hotness in percent), parallel
/// to [`NODE_FIELDS`]. Used by the Table 2 harness for comparison.
pub const PAPER_PBO_HOTNESS: [f64; 15] = [
    0.2, 0.0, 73.7, 20.8, 20.7, 0.1, 3.1, 23.2, 39.9, 0.8, 0.7, 100.0, 2.8, 53.3, 33.7,
];

/// Build the mcf model program for an input set.
pub fn build(input: InputSet) -> Program {
    build_config(McfConfig::for_input(input))
}

/// Build the mcf model program with explicit parameters.
pub fn build_config(cfg: McfConfig) -> Program {
    let mut pb = ProgramBuilder::new();
    let i64t = pb.scalar(ScalarKind::I64);
    let void = pb.void();
    let u8t = pb.scalar(ScalarKind::U8);
    let pu8 = pb.ptr(u8t);

    // ---- types ----------------------------------------------------------
    let (node, node_ty) = pb.record_fwd("node");
    let (arc, arc_ty) = pb.record_fwd("arc");
    let pnode = pb.ptr(node_ty);
    let parc = pb.ptr(arc_ty);
    pb.complete_record(
        node,
        vec![
            Field::new("number", i64t),
            Field::new("ident", i64t),
            Field::new("pred", pnode),
            Field::new("child", pnode),
            Field::new("sibling", pnode),
            Field::new("sibling_prev", pnode),
            Field::new("depth", i64t),
            Field::new("orientation", i64t),
            Field::new("basic_arc", parc),
            Field::new("firstout", parc),
            Field::new("firstin", parc),
            Field::new("potential", i64t),
            Field::new("flow", i64t),
            Field::new("mark", i64t),
            Field::new("time", i64t),
        ],
    );
    pb.complete_record(
        arc,
        vec![
            Field::new("cost", i64t),
            Field::new("tail", pnode),
            Field::new("head", pnode),
            Field::new("aident", i64t),
            Field::new("nextout", parc),
            Field::new("nextin", parc),
            Field::new("aflow", i64t),
            Field::new("org_cost", i64t),
        ],
    );
    let (basket, basket_ty) = pb.record(
        "basket",
        vec![
            Field::new("a", parc),
            Field::new("cost", i64t),
            Field::new("abs_cost", i64t),
        ],
    );
    let pbasket = pb.ptr(basket_ty);
    let (network, network_ty) = pb.record(
        "network",
        vec![
            Field::new("n_nodes", i64t),
            Field::new("n_arcs", i64t),
            Field::new("feas_tol", i64t),
        ],
    );
    let (stats, stats_ty) = pb.record(
        "stats",
        vec![Field::new("checks", i64t), Field::new("iters_done", i64t)],
    );

    let fwrite = pb.libc("fwrite", vec![pu8, i64t], i64t);

    // field index helper
    let nf = |name: &str| -> u32 {
        NODE_FIELDS
            .iter()
            .position(|f| *f == name)
            .expect("known node field") as u32
    };

    // ---- init ------------------------------------------------------------
    // init(nodes, arcs, n): writes every node field except `ident`, and
    // every arc field.
    let init = pb.declare("init", vec![pnode, parc, i64t], void);
    pb.define(init, |fb| {
        let nodes = fb.param(0);
        let arcs = fb.param(1);
        let n = fb.param(2);
        let m = fb.div(n.into(), Operand::int(4));
        fb.count_loop(n.into(), |fb, i| {
            let e = fb.index_addr(nodes, node_ty, i.into());
            fb.store_field(e.into(), node, nf("number"), i.into());
            // pred: pseudo-random earlier node (tree parent)
            let h = lcg_index(fb, i, n);
            let pe = fb.index_addr(nodes, node_ty, h.into());
            fb.store_field(e.into(), node, nf("pred"), pe.into());
            let h2 = lcg_index(fb, h, n);
            let ce = fb.index_addr(nodes, node_ty, h2.into());
            fb.store_field(e.into(), node, nf("child"), ce.into());
            let h3 = lcg_index(fb, h2, n);
            let se = fb.index_addr(nodes, node_ty, h3.into());
            fb.store_field(e.into(), node, nf("sibling"), se.into());
            fb.store_field(e.into(), node, nf("sibling_prev"), se.into());
            let d = fb.bin(slo_ir::BinOp::Rem, i.into(), Operand::int(32));
            fb.store_field(e.into(), node, nf("depth"), d.into());
            let o = fb.bin(slo_ir::BinOp::And, i.into(), Operand::int(1));
            fb.store_field(e.into(), node, nf("orientation"), o.into());
            // subset nodes (low indices) point at a small arc window so
            // the t3/t5 subset walks stay cache-resident
            // clamp the arc window to the arc array length so small
            // instances stay in bounds
            let aw = fb.bin(slo_ir::BinOp::Rem, h.into(), Operand::int(512));
            let am = fb.bin(slo_ir::BinOp::Rem, aw.into(), m.into());
            let ae = fb.index_addr(arcs, arc_ty, am.into());
            fb.store_field(e.into(), node, nf("basic_arc"), ae.into());
            fb.store_field(e.into(), node, nf("firstout"), ae.into());
            fb.store_field(e.into(), node, nf("firstin"), ae.into());
            fb.store_field(e.into(), node, nf("potential"), i.into());
            fb.store_field(e.into(), node, nf("flow"), Operand::int(0));
            fb.store_field(e.into(), node, nf("mark"), Operand::int(0));
            fb.store_field(e.into(), node, nf("time"), Operand::int(0));
        });
        fb.count_loop(m.into(), |fb, i| {
            let a = fb.index_addr(arcs, arc_ty, i.into());
            let c = fb.bin(slo_ir::BinOp::Rem, i.into(), Operand::int(1000));
            fb.store_field(a.into(), arc, 0, c.into()); // cost
            let t = lcg_index(fb, i, n);
            let te = fb.index_addr(nodes, node_ty, t.into());
            fb.store_field(a.into(), arc, 1, te.into()); // tail
            let h = lcg_index(fb, t, n);
            let he = fb.index_addr(nodes, node_ty, h.into());
            fb.store_field(a.into(), arc, 2, he.into()); // head
            fb.store_field(a.into(), arc, 3, i.into()); // aident
            fb.store_field(a.into(), arc, 4, a.into()); // nextout (self)
            fb.store_field(a.into(), arc, 5, a.into()); // nextin
            fb.store_field(a.into(), arc, 6, Operand::int(0)); // aflow
            fb.store_field(a.into(), arc, 7, c.into()); // org_cost
        });
        fb.ret(None);
    });

    // ---- potential-access helpers ----------------------------------------
    // The `potential` reads/writes live in tiny callees invoked from the
    // phase loops. A per-procedure static estimate (SPBO) weighs their
    // bodies with the callee's local entry frequency and *underestimates*
    // the field (the paper's SPBO column: potential 58% vs pred 100%);
    // inter-procedural scaling (ISPBO) restores it to the top.
    let bump_pot = {
        let fid = pb.declare("bump_pot", vec![pnode, pnode], void);
        pb.define(fid, |fb| {
            let e = fb.param(0);
            let p = fb.param(1);
            let pp = fb.load_field(p.into(), node, nf("potential"));
            let np = fb.add(pp.into(), Operand::int(1));
            fb.store_field(e.into(), node, nf("potential"), np.into());
            fb.ret(None);
        });
        fid
    };
    let read_pot = {
        let fid = pb.declare("read_pot", vec![pnode], i64t);
        pb.define(fid, |fb| {
            let e = fb.param(0);
            let v = fb.load_field(e.into(), node, nf("potential"));
            fb.ret(Some(v.into()));
        });
        fid
    };
    let scan_pot = {
        let fid = pb.declare("scan_pot", vec![pnode, i64t], void);
        pb.define(fid, |fb| {
            let e = fb.param(0);
            let cost = fb.param(1);
            let v = fb.load_field(e.into(), node, nf("potential"));
            let red = fb.sub(cost.into(), v.into());
            fb.store_field(e.into(), node, nf("potential"), red.into());
            fb.ret(None);
        });
        fid
    };

    // ---- hot phase functions (called per simplex iteration) --------------
    // Trip fractions tuned to the Table 2 PBO column; see module docs.
    //
    // Access-pattern shaping (for the DMISS/DLAT columns): fields read on
    // an L1-resident subset of nodes (`i % SUBSET`) are hot but rarely
    // miss (pred, mark, child, sibling, basic_arc); fields read through
    // pointer chases or full-range random indices miss heavily (potential,
    // time, orientation). This decoupling of hotness from miss counts is
    // what makes the paper's DMISS column a poor hotness predictor.
    const SUBSET: i64 = 96;
    // t1 = 0.400 {pred, potential}  (subset walk; pred chase for potential)
    let refresh1 = phase_fn(
        &mut pb,
        "refresh1",
        pnode,
        i64t,
        |fb, nodes, trip, n, it| {
            // the walked window is L1-resident within one call (low pred
            // misses) but rotates every iteration, so the pred-chase targets
            // (assigned randomly at init) sweep the whole array
            let mix = fb.mul(it.into(), Operand::int(SUBSET));
            fb.count_loop(trip.into(), |fb, i| {
                let idx = fb.bin(slo_ir::BinOp::Rem, i.into(), Operand::int(SUBSET));
                let base = fb.add(idx.into(), mix.into());
                let widx = fb.bin(slo_ir::BinOp::Rem, base.into(), n.into());
                let e = fb.index_addr(nodes, node_ty, widx.into());
                let p = fb.load_field(e.into(), node, nf("pred"));
                fb.call_void(bump_pot, vec![e.into(), p.into()]);
            });
        },
    );
    // t2 = 0.337 {pred, potential, mark, time}; time on a random node
    let refresh2 = phase_fn(
        &mut pb,
        "refresh2",
        pnode,
        i64t,
        |fb, nodes, trip, n, it| {
            fb.count_loop(trip.into(), |fb, i| {
                let idx = fb.bin(slo_ir::BinOp::Rem, i.into(), Operand::int(SUBSET));
                let e = fb.index_addr(nodes, node_ty, idx.into());
                let mix = fb.mul(it.into(), Operand::int(1_000_003));
                let seed = fb.add(i.into(), mix.into());
                let j = lcg_index(fb, seed, n);
                let e2 = fb.index_addr(nodes, node_ty, j.into());
                let t = fb.load_field(e2.into(), node, nf("time"));
                let v = fb.call(read_pot, vec![e.into()]);
                let s = fb.add(t.into(), v.into());
                fb.store_field(e.into(), node, nf("mark"), s.into());
                let p = fb.load_field(e.into(), node, nf("pred"));
                let c = fb.cmp(CmpOp::Ne, p.into(), Operand::null());
                fb.if_then(c.into(), |fb| {
                    let nt = fb.add(t.into(), Operand::int(1));
                    fb.store_field(e2.into(), node, nf("time"), nt.into());
                });
            });
        },
    );
    // t3 = 0.263 {potential, basic_arc}; potential random, basic_arc subset.
    // The subset nodes' basic_arc pointers land in a small arc range (set
    // up by init), so the arc side stays cached and the L3 pressure is
    // carried by the node array alone.
    let scan_arcs = phase_fn(
        &mut pb,
        "scan_arcs",
        pnode,
        i64t,
        |fb, nodes, trip, n, it| {
            fb.count_loop(trip.into(), |fb, i| {
                let idx = fb.bin(slo_ir::BinOp::Rem, i.into(), Operand::int(SUBSET));
                let e = fb.index_addr(nodes, node_ty, idx.into());
                let ba = fb.load_field(e.into(), node, nf("basic_arc"));
                let cost0 = fb.load_field(ba.into(), arc, 0);
                // touch every arc field: the arc type then has no cold fields
                // and stays untransformed even when the relaxed analysis makes
                // it legal (the paper: the transformed set is constant)
                let ai = fb.load_field(ba.into(), arc, 3);
                let af = fb.load_field(ba.into(), arc, 6);
                let ao = fb.load_field(ba.into(), arc, 7);
                let t1s = fb.add(ai.into(), af.into());
                let t2s = fb.add(t1s.into(), ao.into());
                let tl = fb.load_field(ba.into(), arc, 1);
                let hd = fb.load_field(ba.into(), arc, 2);
                let no_ = fb.load_field(ba.into(), arc, 4);
                let ni_ = fb.load_field(ba.into(), arc, 5);
                let c1 = fb.cmp(CmpOp::Ne, tl.into(), hd.into());
                let c2 = fb.cmp(CmpOp::Ne, no_.into(), ni_.into());
                let t3s = fb.add(c1.into(), c2.into());
                let t4s = fb.add(t2s.into(), t3s.into());
                let mix5 = fb.bin(slo_ir::BinOp::And, t4s.into(), Operand::int(1));
                let cost = fb.add(cost0.into(), mix5.into());
                let mix = fb.mul(it.into(), Operand::int(999_983));
                let seed = fb.add(i.into(), mix.into());
                let j = lcg_index(fb, seed, n);
                let e2 = fb.index_addr(nodes, node_ty, j.into());
                fb.call_void(scan_pot, vec![e2.into(), cost.into()]);
            });
        },
    );
    // t4 = 0.196 {mark} (subset: hot, cached)
    let price1 = phase_fn(
        &mut pb,
        "price1",
        pnode,
        i64t,
        |fb, nodes, trip, _n, _it| {
            fb.count_loop(trip.into(), |fb, i| {
                let idx = fb.bin(slo_ir::BinOp::Rem, i.into(), Operand::int(SUBSET));
                let e = fb.index_addr(nodes, node_ty, idx.into());
                let mk = fb.load_field(e.into(), node, nf("mark"));
                let nm = fb.add(mk.into(), Operand::int(1));
                fb.store_field(e.into(), node, nf("mark"), nm.into());
            });
        },
    );
    // t5 = 0.136 {basic_arc, child} (subset)
    let tree1 = phase_fn(&mut pb, "tree1", pnode, i64t, |fb, nodes, trip, _n, _it| {
        fb.count_loop(trip.into(), |fb, i| {
            let idx = fb.bin(slo_ir::BinOp::Rem, i.into(), Operand::int(SUBSET));
            let e = fb.index_addr(nodes, node_ty, idx.into());
            let ba = fb.load_field(e.into(), node, nf("basic_arc"));
            let ch = fb.load_field(e.into(), node, nf("child"));
            let c = fb.cmp(CmpOp::Eq, ba.into(), Operand::null());
            let c2 = fb.cmp(CmpOp::Eq, ch.into(), Operand::null());
            let both = fb.add(c.into(), c2.into());
            fb.if_then(both.into(), |fb| {
                fb.store_field(e.into(), node, nf("child"), e.into());
            });
        });
    });
    // t6 = 0.072 {child, sibling} (subset)
    let tree2 = phase_fn(&mut pb, "tree2", pnode, i64t, |fb, nodes, trip, _n, _it| {
        fb.count_loop(trip.into(), |fb, i| {
            let idx = fb.bin(slo_ir::BinOp::Rem, i.into(), Operand::int(SUBSET));
            let e = fb.index_addr(nodes, node_ty, idx.into());
            let ch = fb.load_field(e.into(), node, nf("child"));
            let sb = fb.load_field(e.into(), node, nf("sibling"));
            let c = fb.cmp(CmpOp::Eq, ch.into(), sb.into());
            fb.if_then(c.into(), |fb| {
                fb.store_field(e.into(), node, nf("sibling"), e.into());
            });
        });
    });
    // t7 = 0.135 {sibling, orientation}; orientation random, sibling subset
    let tree3 = phase_fn(&mut pb, "tree3", pnode, i64t, |fb, nodes, trip, n, it| {
        fb.count_loop(trip.into(), |fb, i| {
            let idx = fb.bin(slo_ir::BinOp::Rem, i.into(), Operand::int(SUBSET));
            let e = fb.index_addr(nodes, node_ty, idx.into());
            let sb = fb.load_field(e.into(), node, nf("sibling"));
            let mix = fb.mul(it.into(), Operand::int(999_979));
            let seed = fb.add(i.into(), mix.into());
            let j = lcg_index(fb, seed, n);
            let e2 = fb.index_addr(nodes, node_ty, j.into());
            let o = fb.load_field(e2.into(), node, nf("orientation"));
            let c = fb.cmp(CmpOp::Ne, sb.into(), Operand::null());
            let no = fb.add(o.into(), c.into());
            fb.store_field(e2.into(), node, nf("orientation"), no.into());
        });
    });
    // t8 = 0.097 {orientation} (random: missy)
    let orient = phase_fn(&mut pb, "orient", pnode, i64t, |fb, nodes, trip, n, it| {
        fb.count_loop(trip.into(), |fb, i| {
            let mix = fb.mul(it.into(), Operand::int(999_961));
            let seed = fb.add(i.into(), mix.into());
            let j = lcg_index(fb, seed, n);
            let e = fb.index_addr(nodes, node_ty, j.into());
            let o = fb.load_field(e.into(), node, nf("orientation"));
            let no = fb.bin(slo_ir::BinOp::Xor, o.into(), Operand::int(1));
            fb.store_field(e.into(), node, nf("orientation"), no.into());
        });
    });
    // t9 = 0.031 {depth}, t10 = 0.028 {flow}
    let depth_scan = phase_fn(
        &mut pb,
        "depth_scan",
        pnode,
        i64t,
        |fb, nodes, trip, n, _it| {
            fb.count_loop(trip.into(), |fb, i| {
                let idx = fb.bin(slo_ir::BinOp::Rem, i.into(), n.into());
                let e = fb.index_addr(nodes, node_ty, idx.into());
                let d = fb.load_field(e.into(), node, nf("depth"));
                let nd = fb.add(d.into(), Operand::int(1));
                fb.store_field(e.into(), node, nf("depth"), nd.into());
            });
        },
    );
    let flow_scan = phase_fn(
        &mut pb,
        "flow_scan",
        pnode,
        i64t,
        |fb, nodes, trip, n, _it| {
            fb.count_loop(trip.into(), |fb, i| {
                let idx = fb.bin(slo_ir::BinOp::Rem, i.into(), n.into());
                let e = fb.index_addr(nodes, node_ty, idx.into());
                let f = fb.load_field(e.into(), node, nf("flow"));
                let nd = fb.add(f.into(), Operand::int(1));
                fb.store_field(e.into(), node, nf("flow"), nd.into());
            });
        },
    );

    // ---- rare fields: called once from main ------------------------------
    // (a separate compilation unit, so the FE/IPA summary aggregation is
    // exercised across translation units like in the real benchmark)
    pb.unit("mcfutil.c");
    let rare = pb.declare("rare_fields", vec![pnode, i64t, i64t], void);
    pb.define(rare, |fb| {
        let nodes = fb.param(0);
        let n = fb.param(1);
        let total = fb.param(2); // n * iters
        for (field, permille) in [
            ("firstout", 8i64),
            ("firstin", 7),
            ("number", 2),
            ("sibling_prev", 1),
        ] {
            let trip = fb.mul(total.into(), Operand::int(permille));
            let trip = fb.div(trip.into(), Operand::int(1000));
            fb.count_loop(trip.into(), |fb, i| {
                let idx = fb.bin(slo_ir::BinOp::Rem, i.into(), n.into());
                let e = fb.index_addr(nodes, node_ty, idx.into());
                let v = fb.load_field(e.into(), node, nf(field));
                let c = fb.cmp(CmpOp::Ne, v.into(), Operand::int(-1));
                fb.if_then(c.into(), |fb| {
                    fb.iconst(0);
                });
            });
        }
        fb.ret(None);
    });

    // ---- the legality-shaping functions ----------------------------------
    // arc: ATKN (field address arithmetic, once)
    let arc_atkn = pb.declare("arc_addr_trick", vec![parc], i64t);
    pb.define(arc_atkn, |fb| {
        let a = fb.param(0);
        let fa = fb.field_addr(a.into(), arc, 0);
        let moved = fb.add(fa.into(), Operand::int(8));
        let v = fb.load(moved.into(), i64t);
        // read every arc field once so none is "dead" even when the
        // relaxed analysis makes arc legal (the paper: the transformed
        // set stays constant under relaxation)
        let acc = fb.fresh();
        fb.assign(acc, v.into());
        for f in [0u32, 3, 6, 7] {
            let x = fb.load_field(a.into(), arc, f);
            let ns = fb.add(acc.into(), x.into());
            fb.assign(acc, ns.into());
        }
        for f in [1u32, 2, 4, 5] {
            let x = fb.load_field(a.into(), arc, f);
            let c = fb.cmp(CmpOp::Ne, x.into(), Operand::null());
            let ns = fb.add(acc.into(), c.into());
            fb.assign(acc, ns.into());
        }
        fb.ret(Some(acc.into()));
    });
    // basket: CSTF
    let basket_cast = pb.declare("basket_cast", vec![pbasket], i64t);
    pb.define(basket_cast, |fb| {
        let b = fb.param(0);
        let v = fb.cast(b.into(), pbasket, i64t);
        fb.ret(Some(v.into()));
    });
    // network: LIBC escape; stats: MSET
    pb.unit("output.c");
    let report = pb.declare("report", vec![], void);
    pb.define(report, |fb| {
        let net = fb.alloc(network_ty, Operand::int(4));
        fb.store_field(net.into(), network, 0, Operand::int(1));
        let v = fb.load_field(net.into(), network, 0);
        let c = fb.cmp(CmpOp::Gt, v.into(), Operand::int(0));
        fb.if_then(c.into(), |fb| {
            fb.call_void(fwrite, vec![net.into(), Operand::int(24)]);
        });
        let st = fb.alloc(stats_ty, Operand::int(4));
        fb.memset(st.into(), Operand::int(0), Operand::int(16));
        fb.store_field(st.into(), stats, 0, Operand::int(1));
        let sv = fb.load_field(st.into(), stats, 0);
        let c2 = fb.cmp(CmpOp::Gt, sv.into(), Operand::int(0));
        fb.if_then(c2.into(), |fb| {
            fb.iconst(0);
        });
        fb.free(net.into());
        fb.free(st.into());
        fb.ret(None);
    });

    // ---- main -------------------------------------------------------------
    pb.unit("mcf.c");
    let main = pb.declare("main", vec![], i64t);
    pb.define(main, |fb| {
        let n = fb.iconst(cfg.n);
        let m = fb.div(n.into(), Operand::int(4));
        let nodes = fb.alloc(node_ty, n.into());
        let arcs = fb.alloc(arc_ty, m.into());
        fb.call_void(init, vec![nodes.into(), arcs.into(), n.into()]);

        // basket + arc legality constructs (cheap, once)
        let bk = fb.alloc(basket_ty, Operand::int(16));
        fb.store_field(bk.into(), basket, 1, Operand::int(5));
        fb.store_field(bk.into(), basket, 2, Operand::int(6));
        let bv = fb.load_field(bk.into(), basket, 1);
        let bv2 = fb.load_field(bk.into(), basket, 2);
        let ba = fb.load_field(bk.into(), basket, 0);
        let bc = fb.cmp(CmpOp::Eq, ba.into(), Operand::null());
        let t1 = fb.add(bv.into(), bv2.into());
        let _ = fb.add(t1.into(), bc.into());
        fb.call(basket_cast, vec![bk.into()]);
        let a0 = fb.index_addr(arcs, arc_ty, Operand::int(0));
        fb.call(arc_atkn, vec![a0.into()]);

        // the simplex loop
        // per-mille trip fractions; the skewed mix models how a different
        // input shifts the phase balance slightly
        let sk = cfg.skew;
        let trips: [(FuncId, i64); 10] = [
            (refresh1, 400 - 24 * sk),
            (refresh2, 337 + 100 * sk),
            (scan_arcs, 263 + 12 * sk),
            (price1, 196 + 124 * sk),
            (tree1, 136 + 9 * sk),
            (tree2, 72 - 5 * sk),
            (tree3, 135 + 8 * sk),
            (orient, 97 - 6 * sk),
            (depth_scan, 31 - 17 * sk),
            (flow_scan, 28 - 18 * sk),
        ];
        fb.count_loop(Operand::int(cfg.iters), |fb, it| {
            for (f, permille) in trips {
                let t = fb.mul(n.into(), Operand::int(permille));
                let t = fb.div(t.into(), Operand::int(1000));
                fb.call_void(f, vec![nodes.into(), t.into(), n.into(), it.into()]);
            }
        });

        // rare fields (once, proportional to n*iters)
        let total = fb.mul(n.into(), Operand::int(cfg.iters));
        fb.call_void(rare, vec![nodes.into(), n.into(), total.into()]);

        fb.call_void(report, vec![]);

        // checksum: sum of potentials
        let sum = fb.fresh();
        fb.assign(sum, Operand::int(0));
        fb.count_loop(n.into(), |fb, i| {
            let e = fb.index_addr(nodes, node_ty, i.into());
            let v = fb.load_field(e.into(), node, nf("potential"));
            let ns = fb.add(sum.into(), v.into());
            fb.assign(sum, ns.into());
        });
        fb.free(bk.into());
        fb.ret(Some(sum.into()));
    });

    pb.finish()
}

/// Declare and define a phase function
/// `name(nodes, trip, n, iter) -> void`; `iter` is the simplex iteration,
/// mixed into the pseudo-random index streams so every iteration touches
/// a fresh slice of the node array.
fn phase_fn(
    pb: &mut ProgramBuilder,
    name: &str,
    pnode: slo_ir::TypeId,
    i64t: slo_ir::TypeId,
    body: impl FnOnce(&mut slo_ir::FuncBuilder<'_>, Reg, Reg, Reg, Reg),
) -> FuncId {
    let void = pb.void();
    let fid = pb.declare(name, vec![pnode, i64t, i64t, i64t], void);
    pb.define(fid, |fb| {
        let nodes = fb.param(0);
        let trip = fb.param(1);
        let n = fb.param(2);
        let it = fb.param(3);
        body(fb, nodes, trip, n, it);
        fb.ret(None);
    });
    fid
}

/// Emit an LCG step producing a pseudo-random index in `0..n`.
fn lcg_index(fb: &mut slo_ir::FuncBuilder<'_>, seed: Reg, n: Reg) -> Reg {
    let a = fb.mul(seed.into(), Operand::int(1103515245));
    let b = fb.add(a.into(), Operand::int(12345));
    let c = fb.bin(slo_ir::BinOp::And, b.into(), Operand::int(0x7fff_ffff));
    fb.bin(slo_ir::BinOp::Rem, c.into(), n.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_analysis::ipa::{analyze_program, LegalityConfig};
    use slo_ir::verify::assert_valid;

    fn small() -> Program {
        build_config(McfConfig {
            n: 600,
            iters: 40,
            skew: 0,
        })
    }

    #[test]
    fn builds_and_verifies() {
        let p = small();
        assert_valid(&p);
        assert_eq!(p.types.num_records(), 5);
    }

    #[test]
    fn spans_multiple_compilation_units() {
        let p = small();
        assert!(p.units.len() >= 4, "mcf models several translation units");
        let rare = p.func_by_name("rare_fields").expect("rare_fields");
        let main = p.main().expect("main");
        assert_ne!(p.func(rare).unit, 0);
        assert_ne!(p.func(rare).unit, p.func(main).unit);
        // per-unit FE summaries really are partial
        let sums = slo_analysis::legality::analyze_all_units(&p);
        let node = p.types.record_by_name("node").expect("node");
        let units_touching_node = sums.iter().filter(|s| s.types.contains_key(&node)).count();
        assert!(units_touching_node >= 2, "node is used in several units");
    }

    #[test]
    fn table1_census() {
        let p = small();
        let strict = analyze_program(&p, &LegalityConfig::default());
        assert_eq!(strict.num_legal(), 1, "mcf: 1 strictly legal type");
        let node = p.types.record_by_name("node").expect("node");
        assert!(strict.verdict(node).legal(), "node must be the legal one");
        let relaxed = analyze_program(
            &p,
            &LegalityConfig {
                relax_cast_addr: true,
                ..Default::default()
            },
        );
        assert_eq!(relaxed.num_legal(), 3, "mcf: 3 relax-legal types");
    }

    #[test]
    fn runs_and_is_deterministic() {
        let p = small();
        let o1 = slo_vm::run(&p, &slo_vm::VmOptions::default()).expect("run 1");
        let o2 = slo_vm::run(&p, &slo_vm::VmOptions::default()).expect("run 2");
        assert_eq!(o1.exit, o2.exit);
        assert!(o1.stats.instructions > 100_000);
    }

    #[test]
    fn pbo_hotness_shape() {
        let p = small();
        let fb = slo_vm::run(&p, &slo_vm::VmOptions::profiling())
            .expect("profile run")
            .feedback;
        let node = p.types.record_by_name("node").expect("node");
        let rel = slo_analysis::relative_hotness(&p, node, &slo_analysis::WeightScheme::Pbo(&fb));
        let f = |n: &str| rel[NODE_FIELDS.iter().position(|x| *x == n).expect("field")];
        assert_eq!(f("potential"), 100.0, "potential must be hottest: {rel:?}");
        assert!(f("pred") > 55.0 && f("pred") < 90.0, "pred {}", f("pred"));
        assert!(f("mark") > 35.0 && f("mark") < 70.0, "mark {}", f("mark"));
        assert!(f("time") > 20.0 && f("time") < 50.0, "time {}", f("time"));
        assert!(f("ident") == 0.0, "ident unused");
        assert!(f("number") < 3.0, "number {}", f("number"));
        assert!(f("sibling_prev") < 3.0);
        assert!(f("flow") < 7.0, "flow {}", f("flow"));
        // correlation with the paper's column is strong
        let r = slo_analysis::correlation(&rel, &PAPER_PBO_HOTNESS);
        assert!(r > 0.9, "correlation to the paper's PBO column: {r}");
    }
}
