//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset used by the workspace benches
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` with `Throughput`, `Bencher::iter`) on top of a
//! plain wall-clock harness: calibrate the per-iteration cost, then
//! take a fixed number of timed samples and report min / median / mean.
//!
//! Not a statistics engine — it exists so `cargo bench` runs offline
//! and prints comparable ns/iter + throughput numbers.

use std::time::{Duration, Instant};

/// Target wall time per measurement sample. Keep benches quick; the
/// numbers here feed relative comparisons, not publication plots.
const SAMPLE_TARGET: Duration = Duration::from_millis(60);
const SAMPLES: usize = 11;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to bench closures; `iter` times `iters` calls of the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes flags like `--bench`; treat the first
        // non-flag argument as a substring filter, like criterion does.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.filter, id, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_bench(&self.criterion.filter, &full, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F>(filter: &Option<String>, id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !id.contains(pat.as_str()) {
            return;
        }
    }

    // Calibration: grow the iteration count until one sample takes
    // long enough to time reliably.
    let mut iters: u64 = 1;
    let per_iter_est = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 30 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters *= 4;
    };
    let sample_iters =
        ((SAMPLE_TARGET.as_secs_f64() / per_iter_est.max(1e-12)).ceil() as u64).max(1);

    let mut per_iter_ns: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let mut b = Bencher {
                iters: sample_iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() * 1e9 / sample_iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));

    let min = per_iter_ns[0];
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;

    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(
                "  thrpt: {}/s",
                human_rate(n as f64 / (median * 1e-9), "elem")
            )
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {}/s", human_rate(n as f64 / (median * 1e-9), "B"))
        }
        None => String::new(),
    };
    println!(
        "bench: {id:<48} median {:>12} (min {}, mean {}){thrpt}",
        human_time(median),
        human_time(min),
        human_time(mean),
    );
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}
