//! Differential test: the pre-decoded engine must be observationally
//! identical to the structured reference interpreter.
//!
//! "Observationally identical" is strict: same exit value, same retired
//! instruction count, same simulated cycles, same load/store and cache
//! counters, same heap accounting, and — under instrumented runs — the
//! same edge profile, PMU sample attribution, and stride histograms
//! (`Feedback` compares structurally). Any divergence is a bug in the
//! decoder, not an acceptable approximation.
//!
//! The default tests cover every program family (mcf, art, moldyn, all
//! nine census benchmarks, both §3.4 case studies, the kernel scenario,
//! and a transformed program) at reduced sizes so the whole file runs in
//! seconds. The `full_suite_*` tests execute the unmodified
//! `slo_workloads::all(Training)` suite — hundreds of millions of
//! simulated instructions per engine — and are `#[ignore]`d; run them
//! with `cargo test -p bench --test vm_differential -- --ignored`.

use slo_ir::Program;
use slo_vm::{run, ExecError, VmOptions};
use slo_workloads::{all, InputSet};

/// Run `prog` on both engines under `opts` and assert every observable
/// output matches.
fn check(name: &str, label: &str, prog: &Program, opts: &VmOptions) {
    let d = run(prog, opts).unwrap_or_else(|e| panic!("{name}/{label} decoded: {e}"));
    let s = run(prog, &opts.clone().structured())
        .unwrap_or_else(|e| panic!("{name}/{label} structured: {e}"));
    assert_eq!(d.exit, s.exit, "{name}/{label}: exit value diverged");
    assert_eq!(
        d.stats.instructions, s.stats.instructions,
        "{name}/{label}: instruction count diverged"
    );
    assert_eq!(
        d.stats.cycles, s.stats.cycles,
        "{name}/{label}: cycle count diverged"
    );
    assert_eq!(d.stats, s.stats, "{name}/{label}: stats diverged");
    assert_eq!(d.feedback, s.feedback, "{name}/{label}: feedback diverged");
}

/// Every workload family at sizes that keep one run in the millions of
/// instructions, not hundreds of millions.
fn small_suite() -> Vec<(&'static str, Program)> {
    let mut progs: Vec<(&'static str, Program)> = vec![
        (
            "mcf-small",
            slo_workloads::mcf::build_config(slo_workloads::mcf::McfConfig {
                n: 2_000,
                iters: 8,
                skew: 0,
            }),
        ),
        (
            "art-small",
            slo_workloads::art::build_config(slo_workloads::art::ArtConfig {
                n: 20_000,
                passes: 3,
            }),
        ),
        (
            "moldyn-small",
            slo_workloads::moldyn::build_config(slo_workloads::moldyn::MoldynConfig {
                n: 500,
                steps: 4,
                neighbors: 8,
            }),
        ),
        (
            "spec2006-c",
            slo_workloads::casestudy::spec2006_c(2_000, 6, false),
        ),
        (
            "spec2006-cpp",
            slo_workloads::casestudy::spec2006_cpp(2_000, 6),
        ),
        ("kernel", slo_workloads::kernel::build(1_000, 4_000)),
    ];
    for spec in &slo_workloads::CENSUS_SPECS {
        progs.push((spec.name, slo_workloads::census::generate(spec, 2)));
    }
    progs
}

#[test]
fn engines_agree_plain() {
    for (name, prog) in small_suite() {
        check(name, "plain", &prog, &VmOptions::plain());
    }
}

#[test]
fn engines_agree_profiling() {
    for (name, prog) in small_suite() {
        check(name, "profiling", &prog, &VmOptions::profiling());
    }
}

#[test]
fn engines_agree_sampling_only() {
    for (name, prog) in small_suite() {
        check(name, "sampling", &prog, &VmOptions::sampling_only());
    }
}

#[test]
fn engines_agree_on_transformed_programs() {
    // The evaluation path runs pipeline output, so the decoder must also
    // agree on post-transformation programs (peeled/split layouts).
    use slo::analysis::WeightScheme;
    use slo::pipeline::{compile, PipelineConfig};
    let progs = [
        (
            "mcf-small",
            slo_workloads::mcf::build_config(slo_workloads::mcf::McfConfig {
                n: 2_000,
                iters: 8,
                skew: 0,
            }),
        ),
        (
            "art-small",
            slo_workloads::art::build_config(slo_workloads::art::ArtConfig {
                n: 20_000,
                passes: 3,
            }),
        ),
    ];
    for (name, prog) in progs {
        let res =
            compile(&prog, &WeightScheme::Ispbo, &PipelineConfig::default()).expect("pipeline");
        check(name, "transformed", &res.program, &VmOptions::profiling());
    }
}

#[test]
fn step_limit_identical_across_engines() {
    // Decoded instructions must count exactly like structured ones: a
    // limit one short of the full run fails on both engines, the exact
    // count succeeds on both.
    let prog = slo_workloads::mcf::build_config(slo_workloads::mcf::McfConfig {
        n: 2_000,
        iters: 8,
        skew: 0,
    });
    let total = run(&prog, &VmOptions::plain())
        .expect("full run")
        .stats
        .instructions;

    let mut tight = VmOptions::plain();
    tight.step_limit = total - 1;
    assert_eq!(
        run(&prog, &tight).map(|o| o.exit),
        Err(ExecError::StepLimit),
        "decoded engine must hit the limit"
    );
    assert_eq!(
        run(&prog, &tight.clone().structured()).map(|o| o.exit),
        Err(ExecError::StepLimit),
        "structured engine must hit the limit"
    );

    let mut exact = VmOptions::plain();
    exact.step_limit = total;
    let d = run(&prog, &exact).expect("decoded at exact limit");
    let s = run(&prog, &exact.structured()).expect("structured at exact limit");
    assert_eq!(d.stats.instructions, total);
    assert_eq!(s.stats.instructions, total);
}

// ---------------------------------------------------------------------
// Full-size suite (the exact programs the tables run). ~13 CPU-minutes;
// excluded from the default run, executed with `-- --ignored`.
// ---------------------------------------------------------------------

#[test]
#[ignore = "full Training-input suite, ~13 CPU-minutes; run with -- --ignored"]
fn full_suite_plain() {
    for w in all(InputSet::Training) {
        check(w.name, "plain", &w.program, &VmOptions::plain());
    }
}

#[test]
#[ignore = "full Training-input suite, ~13 CPU-minutes; run with -- --ignored"]
fn full_suite_profiling() {
    for w in all(InputSet::Training) {
        check(w.name, "profiling", &w.program, &VmOptions::profiling());
    }
}

#[test]
#[ignore = "full Training-input suite, ~13 CPU-minutes; run with -- --ignored"]
fn full_suite_sampling_only() {
    for w in all(InputSet::Training) {
        check(w.name, "sampling", &w.program, &VmOptions::sampling_only());
    }
}

// ---------------------------------------------------------------------
// Nightly promotions: the two headline workloads (181.mcf, 179.art) at
// full Training size, run on a schedule by `.github/workflows/
// nightly.yml`. Each writes a sampled Chrome trace of the decoded run
// to `target/nightly-traces/` *before* asserting, so a differential
// failure always leaves a trace artifact for the CI job to upload.
// ---------------------------------------------------------------------

/// Full differential sweep for one workload, with a trace artifact.
fn nightly_check(name: &str, prog: &Program) {
    // 1. traced decoded run → artifact on disk first.
    let rec = slo_obs::Recorder::with_capacity(1 << 14);
    let topts = slo_vm::VmOptions::builder()
        .trace(rec.clone())
        .trace_step_interval(1 << 20)
        .build();
    let mut span = rec.span("vm", name.to_string());
    let traced = run(prog, &topts).unwrap_or_else(|e| panic!("{name} traced: {e}"));
    span.arg("instructions", traced.stats.instructions);
    drop(span);

    let mut dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // repo root
    dir.push("target/nightly-traces");
    std::fs::create_dir_all(&dir).expect("create target/nightly-traces");
    let out = dir.join(format!("{name}.json"));
    std::fs::write(&out, rec.to_chrome_json()).expect("write nightly trace");
    eprintln!("nightly trace: {}", out.display());

    // 2. the full differential sweep, every instrumentation mode.
    check(name, "plain", prog, &VmOptions::plain());
    check(name, "profiling", prog, &VmOptions::profiling());
    check(name, "sampling", prog, &VmOptions::sampling_only());

    // 3. sampled tracing itself must not perturb the observables.
    let plain = run(prog, &VmOptions::plain()).unwrap_or_else(|e| panic!("{name} plain: {e}"));
    assert_eq!(traced.exit, plain.exit, "{name}: tracing changed the exit");
    assert_eq!(
        traced.stats.instructions, plain.stats.instructions,
        "{name}: tracing changed the instruction count"
    );
    assert_eq!(
        traced.stats.cycles, plain.stats.cycles,
        "{name}: tracing changed the cycle count"
    );
}

#[test]
#[ignore = "full Training-size 181.mcf, minutes of CPU; nightly CI runs it"]
fn nightly_full_mcf() {
    nightly_check("181.mcf", &slo_workloads::mcf::build(InputSet::Training));
}

#[test]
#[ignore = "full Training-size 179.art, minutes of CPU; nightly CI runs it"]
fn nightly_full_art() {
    nightly_check("179.art", &slo_workloads::art::build(InputSet::Training));
}
