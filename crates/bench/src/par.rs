//! Minimal data-parallel helper for the experiment drivers.
//!
//! The implementation moved to `slo_service::pool` when the batch
//! service was built around the same bounded worker queue; this module
//! keeps the drivers' historical `par_map` entry point as a thin
//! delegation (all cores, input order preserved).

/// Map `f` over `items` on all available cores, preserving input order.
///
/// Falls back to a sequential map for empty/singleton inputs or when
/// parallelism is unavailable. Panics in `f` propagate to the caller.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    slo_service::pool::par_map_bounded(0, items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u32> = vec![];
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        par_map(&items, |&x| {
            assert!(x != 42, "boom");
            x
        });
    }
}
