//! Minimal data-parallel helper for the experiment drivers.
//!
//! The container has no rayon, so this is a scoped-thread work queue:
//! workers pull item indices off a shared atomic counter, compute
//! results locally, and the caller reassembles them in input order.
//! Good enough for "run twelve independent pipeline+VM measurements on
//! all cores", which is the only shape the drivers need.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `f` over `items` on all available cores, preserving input order.
///
/// Falls back to a sequential map for empty/singleton inputs or when
/// parallelism is unavailable. Panics in `f` propagate to the caller.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len());
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u32> = vec![];
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        par_map(&items, |&x| {
            assert!(x != 42, "boom");
            x
        });
    }
}
