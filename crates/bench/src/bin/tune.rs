//! Internal calibration helper: measure one workload's transformation
//! speedup at explicit sizes. Not part of the paper reproduction; used to
//! pick the committed workload configurations.
//!
//! ```text
//! tune mcf <n> <iters> [pbo]
//! tune art <n> <passes>
//! tune moldyn <n> <steps> <neighbors> [pbo]
//! tune c <n> <iters> <unroll01>
//! tune cpp <n> <iters>
//! ```

use bench::measure;
use bench::par::par_map;
use bench::report::{json_flag, record_table, TableStats};
use slo_workloads::{PaperRow, Workload};

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let json = json_flag(&mut args);
    let get = |i: usize| -> i64 { args[i].parse().expect("numeric arg") };
    let paper = PaperRow {
        types: 0,
        legal: 0,
        relax: 0,
        transformed: 0,
        perf_pbo: None,
        perf_nopbo: None,
    };
    let (program, pbo) = match args[1].as_str() {
        "mcf" => (
            slo_workloads::mcf::build_config(slo_workloads::mcf::McfConfig {
                n: get(2),
                iters: get(3),
                skew: 0,
            }),
            args.get(4).map(|s| s == "pbo").unwrap_or(false),
        ),
        "art" => (
            slo_workloads::art::build_config(slo_workloads::art::ArtConfig {
                n: get(2),
                passes: get(3),
            }),
            false,
        ),
        "moldyn" => (
            slo_workloads::moldyn::build_config(slo_workloads::moldyn::MoldynConfig {
                n: get(2),
                steps: get(3),
                neighbors: get(4),
            }),
            args.get(5).map(|s| s == "pbo").unwrap_or(false),
        ),
        "c" => (
            slo_workloads::casestudy::spec2006_c(get(2), get(3), get(4) != 0),
            false,
        ),
        "cpp" => (
            slo_workloads::casestudy::spec2006_cpp(get(2), get(3)),
            false,
        ),
        other => panic!("unknown workload `{other}`"),
    };
    let w = Workload {
        name: "tune",
        program,
        paper,
    };
    let t0 = std::time::Instant::now();
    if std::env::var("TUNE_STATS").is_ok() {
        let res = slo::compile(
            &w.program,
            &slo::analysis::WeightScheme::Ispbo,
            &slo::pipeline::PipelineConfig::default(),
        )
        .expect("pipeline");
        // baseline and optimized stat runs are independent
        let progs = [(&w.program, "baseline "), (&res.program, "optimized")];
        let outs = par_map(&progs, |(p, _)| {
            slo_vm::run(p, &slo_vm::VmOptions::default()).expect("run")
        });
        for ((_, tag), out) in progs.iter().zip(&outs) {
            println!(
                "{tag}: instr={} cycles={} loads={} stores={} l1m={} l2m={} l3m={} mem={}",
                out.stats.instructions,
                out.stats.cycles,
                out.stats.loads,
                out.stats.stores,
                out.stats.cache.levels[0].misses,
                out.stats.cache.levels[1].misses,
                out.stats.cache.levels[2].misses,
                out.stats.cache.memory_accesses
            );
        }
    }
    let row = measure(&w, pbo);
    println!(
        "perf {:+.1}%  T_t={} S/D={}/{}  (wall {:?})",
        row.perf,
        row.transformed,
        row.split_fields,
        row.dead_fields,
        t0.elapsed()
    );
    if json {
        record_table(
            "tune",
            TableStats {
                wall_seconds: t0.elapsed().as_secs_f64(),
                instructions: row.instructions,
                cycles: row.cycles,
            },
        );
    }
}
