//! Regenerates **Table 3**: "Transformable/transformed types and
//! performance impact".
//!
//! Each benchmark runs through the full pipeline (legality → profitability
//! → heuristics → rewrite) and both versions execute on the simulated
//! machine. For 181.mcf and moldyn both the PBO and the non-profile
//! (ISPBO) configurations are shown, as in the paper.
//!
//! The per-benchmark measurements are independent, so they run in
//! parallel across all cores (`bench::par::par_map`); rows print in
//! table order once every worker is done. `--json` additionally records
//! wall time and simulated-instruction throughput in `BENCH_vm.json`.

use bench::par::par_map;
use bench::report::{json_flag, record_table, TableStats};
use bench::{measure, opt_pct, pct};
use slo_workloads::{all, InputSet, Workload};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = json_flag(&mut args);
    let t0 = std::time::Instant::now();

    // one (workload, pbo) config per output row
    let configs: Vec<(Workload, bool)> = all(InputSet::Training)
        .into_iter()
        .flat_map(|w| {
            let both = matches!(w.name, "181.mcf" | "moldyn");
            let pbos: &[bool] = if both { &[false, true] } else { &[false] };
            pbos.iter().map(move |&pbo| (w.clone(), pbo))
        })
        .collect();

    let rows = par_map(&configs, |(w, pbo)| measure(w, *pbo));

    println!("Table 3 — transformed types and performance impact");
    println!(
        "{:<12} {:>4} {:>3} {:>4} {:>6} {:>9} {:>9}",
        "Benchmark", "PBO", "T", "T_t", "S/D", "Perf%", "paper%"
    );
    for row in &rows {
        println!(
            "{:<12} {:>4} {:>3} {:>4} {:>3}/{:<2} {} {}",
            row.name,
            if row.pbo { "yes" } else { "no" },
            row.types,
            row.transformed,
            row.split_fields,
            row.dead_fields,
            pct(row.perf),
            opt_pct(row.paper),
        );
    }
    println!();
    println!("paper: mcf +16.7/+17.3, art +78.2, moldyn +21.8/+30.9, others in the noise");

    if json {
        record_table(
            "table3",
            TableStats {
                wall_seconds: t0.elapsed().as_secs_f64(),
                instructions: rows.iter().map(|r| r.instructions).sum(),
                cycles: rows.iter().map(|r| r.cycles).sum(),
            },
        );
    }
}
