//! Regenerates **Table 3**: "Transformable/transformed types and
//! performance impact".
//!
//! Each benchmark runs through the full pipeline (legality → profitability
//! → heuristics → rewrite) and both versions execute on the simulated
//! machine. For 181.mcf and moldyn both the PBO and the non-profile
//! (ISPBO) configurations are shown, as in the paper.

use bench::{measure, opt_pct, pct};
use slo_workloads::{all, InputSet};

fn main() {
    println!("Table 3 — transformed types and performance impact");
    println!(
        "{:<12} {:>4} {:>3} {:>4} {:>6} {:>9} {:>9}",
        "Benchmark", "PBO", "T", "T_t", "S/D", "Perf%", "paper%"
    );

    for w in all(InputSet::Training) {
        let both = matches!(w.name, "181.mcf" | "moldyn");
        let configs: &[bool] = if both { &[false, true] } else { &[false] };
        for &pbo in configs {
            let row = measure(&w, pbo);
            println!(
                "{:<12} {:>4} {:>3} {:>4} {:>3}/{:<2} {} {}",
                row.name,
                if pbo { "yes" } else { "no" },
                row.types,
                row.transformed,
                row.split_fields,
                row.dead_fields,
                pct(row.perf),
                opt_pct(row.paper),
            );
        }
    }
    println!();
    println!("paper: mcf +16.7/+17.3, art +78.2, moldyn +21.8/+30.9, others in the noise");
}
