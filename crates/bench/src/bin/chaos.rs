//! Chaos campaign driver: seeded fault-injection sweeps over a mixed
//! batch, asserting the degradation-ladder invariant.
//!
//! Builds the same mixed workload batch as the `batch` driver (mcf,
//! art, moldyn plus kernel variants crossed with the static estimator
//! family), runs it once fault-free as the reference, then replays it
//! under a seeded [`slo_service::FaultPlan`] per campaign seed. The
//! invariant checked for every job of every campaign:
//!
//! * an outcome that stays **Optimized** is bit-identical to the
//!   fault-free reference — faults never silently change optimized
//!   bits;
//! * faults may move a job **down** the ladder (Optimized → Advisory);
//! * a parseable input never lands on **Failed** — that rung is
//!   reserved for unusable input, which this batch has none of.
//!
//! Any violation prints `FAIL` and the driver exits nonzero, so CI can
//! gate on it. Campaigns run on the virtual clock (retry backoff costs
//! no wall time) with two workers, so the pool's worker-death site
//! participates. `--json` merges the tallies into `BENCH_vm.json`
//! under `chaos`.
//!
//! ```text
//! chaos [--seeds N] [--seed-start N] [--jobs N] [--json]
//! ```

use bench::report::{json_flag, record_chaos, ChaosStats};
use slo_service::{
    Clock, FaultPlan, Job, JobOutcome, JobStatus, RetryPolicy, SchemeSpec, Service, ServiceConfig,
};
use slo_workloads::art::{self, ArtConfig};
use slo_workloads::kernel;
use slo_workloads::mcf::{self, McfConfig};
use slo_workloads::moldyn::{self, MoldynConfig};

/// The comparable essence of an outcome: everything except timings and
/// supervision bookkeeping (attempts may legitimately differ under
/// chaos — the bits must not).
fn digest(o: &JobOutcome) -> String {
    match &o.status {
        JobStatus::Optimized(opt) => format!(
            "{} optimized {} {} {} {} {} {:016x}\n{}",
            o.id,
            opt.num_transformed,
            opt.eval.baseline_cycles,
            opt.eval.optimized_cycles,
            opt.eval.baseline_instructions,
            opt.eval.optimized_instructions,
            opt.ipa_fingerprint,
            opt.transformed
        ),
        JobStatus::Advisory { reason, .. } => format!("{} advisory {}", o.id, reason.kind()),
        JobStatus::Failed(msg) => format!("{} failed {msg}", o.id),
    }
}

fn build_jobs(n: usize) -> Vec<Job> {
    let programs = vec![
        (
            "mcf",
            mcf::build_config(McfConfig {
                n: 300,
                iters: 2,
                skew: 0,
            }),
        ),
        ("art", art::build_config(ArtConfig { n: 800, passes: 1 })),
        (
            "moldyn",
            moldyn::build_config(MoldynConfig {
                n: 300,
                steps: 1,
                neighbors: 6,
            }),
        ),
        ("kernel64", kernel::build(64, 200)),
    ];
    let schemes = [
        SchemeSpec::Ispbo,
        SchemeSpec::Spbo,
        SchemeSpec::IspboNo,
        SchemeSpec::IspboW,
    ];
    (0..n)
        .map(|i| {
            let (name, prog) = &programs[i % programs.len()];
            let scheme = schemes[(i / programs.len()) % schemes.len()].clone();
            Job::from_program(format!("{name}#{i}"), prog.clone()).scheme(scheme)
        })
        .collect()
}

fn flag_value(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = json_flag(&mut args);
    let seeds = flag_value(&args, "--seeds").unwrap_or(8);
    let seed_start = flag_value(&args, "--seed-start").unwrap_or(0) as u64;
    let num_jobs = flag_value(&args, "--jobs").unwrap_or(24);
    let jobs = build_jobs(num_jobs);

    // Fault-free reference: the bits every chaos-surviving Optimized
    // outcome must reproduce.
    let reference_svc = Service::new(
        ServiceConfig::builder()
            .workers(2)
            .cache_capacity(64)
            .build(),
    );
    let reference: Vec<String> = reference_svc.run_batch(&jobs).iter().map(digest).collect();
    let ref_optimized = reference
        .iter()
        .filter(|d| d.contains(" optimized "))
        .count();
    println!("reference: {num_jobs} jobs, {ref_optimized} optimized (fault-free)");

    let mut violations = 0usize;
    let mut optimized = 0u64;
    let mut advisory = 0u64;
    let mut faults = 0u64;
    let mut retries = 0u64;
    let mut quarantined = 0u64;
    for seed in seed_start..seed_start + seeds as u64 {
        let svc = Service::with_chaos(
            ServiceConfig::builder()
                .workers(2)
                .cache_capacity(64)
                .build(),
            slo_obs::Recorder::disabled(),
            FaultPlan::seeded(seed),
            RetryPolicy::default(),
            Clock::virtual_clock(),
        );
        let outcomes = svc.run_batch(&jobs);
        for (o, want) in outcomes.iter().zip(&reference) {
            match &o.status {
                JobStatus::Optimized(_) => {
                    if &digest(o) != want {
                        println!(
                            "FAIL: seed {seed}: {} stayed optimized but its bits changed",
                            o.id
                        );
                        violations += 1;
                    }
                }
                JobStatus::Advisory { .. } => {} // down the ladder: allowed
                JobStatus::Failed(msg) => {
                    println!(
                        "FAIL: seed {seed}: {} fell to failed on parseable input: {msg}",
                        o.id
                    );
                    violations += 1;
                }
            }
        }
        let m = svc.metrics();
        println!(
            "seed {seed}: {} optimized, {} advisory, {} failed; {} fault(s) injected, \
             {} retr{}, {} quarantined",
            m.optimized,
            m.degraded,
            m.failed,
            m.faults_injected_total(),
            m.retries,
            if m.retries == 1 { "y" } else { "ies" },
            m.quarantined
        );
        optimized += m.optimized;
        advisory += m.degraded;
        faults += m.faults_injected_total();
        retries += m.retries;
        quarantined += m.quarantined;
    }

    println!(
        "chaos: {seeds} seed(s) x {num_jobs} jobs, {faults} fault(s) injected, \
         {retries} retr{}, {quarantined} quarantined, {violations} ladder violation(s)",
        if retries == 1 { "y" } else { "ies" },
    );
    if json {
        record_chaos(ChaosStats {
            seeds,
            jobs_per_seed: num_jobs,
            violations,
            faults_injected: faults,
            retries,
            quarantined,
            optimized,
            advisory,
        });
    }
    if violations > 0 {
        println!("FAIL: the degradation ladder was violated");
        std::process::exit(1);
    }
    println!("ok: faults only ever moved outcomes down the ladder");
}
