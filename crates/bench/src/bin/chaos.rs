//! Chaos campaign driver: seeded fault-injection sweeps over a mixed
//! batch, asserting the degradation-ladder invariant.
//!
//! Builds the same mixed workload batch as the `batch` driver (mcf,
//! art, moldyn plus kernel variants crossed with the static estimator
//! family), runs it once fault-free as the reference, then replays it
//! under a seeded [`slo_service::FaultPlan`] per campaign seed. The
//! invariant checked for every job of every campaign:
//!
//! * an outcome that stays **Optimized** is bit-identical to the
//!   fault-free reference — faults never silently change optimized
//!   bits;
//! * faults may move a job **down** the ladder (Optimized → Advisory);
//! * a parseable input never lands on **Failed** — that rung is
//!   reserved for unusable input, which this batch has none of.
//!
//! Any violation prints `FAIL` and the driver exits nonzero, so CI can
//! gate on it. Campaigns run on the virtual clock (retry backoff costs
//! no wall time) with two workers, so the pool's worker-death site
//! participates. `--json` merges the tallies into `BENCH_vm.json`
//! under `chaos`.
//!
//! ```text
//! chaos [--seeds N] [--seed-start N] [--jobs N] [--net] [--json]
//! ```
//!
//! `--net` additionally sweeps the socket fault sites (accept-storm,
//! slow-loris, injected disconnect) by standing up an in-process TCP
//! server per seed and hammering it with retrying clients; tallies
//! land under `chaos.net`.

use bench::report::{json_flag, record_chaos, record_chaos_net, ChaosStats, NetChaosStats};
use slo_service::{
    Clock, FaultPlan, Job, JobOutcome, JobStatus, NetConfig, NetServer, Response, RetryPolicy,
    SchemeSpec, Service, ServiceConfig,
};
use slo_workloads::art::{self, ArtConfig};
use slo_workloads::kernel;
use slo_workloads::mcf::{self, McfConfig};
use slo_workloads::moldyn::{self, MoldynConfig};

/// The comparable essence of an outcome: everything except timings and
/// supervision bookkeeping (attempts may legitimately differ under
/// chaos — the bits must not).
fn digest(o: &JobOutcome) -> String {
    match &o.status {
        JobStatus::Optimized(opt) => format!(
            "{} optimized {} {} {} {} {} {:016x}\n{}",
            o.id,
            opt.num_transformed,
            opt.eval.baseline_cycles,
            opt.eval.optimized_cycles,
            opt.eval.baseline_instructions,
            opt.eval.optimized_instructions,
            opt.ipa_fingerprint,
            opt.transformed
        ),
        JobStatus::Advisory { reason, .. } => format!("{} advisory {}", o.id, reason.kind()),
        JobStatus::Failed(msg) => format!("{} failed {msg}", o.id),
    }
}

fn build_jobs(n: usize) -> Vec<Job> {
    let programs = vec![
        (
            "mcf",
            mcf::build_config(McfConfig {
                n: 300,
                iters: 2,
                skew: 0,
            }),
        ),
        ("art", art::build_config(ArtConfig { n: 800, passes: 1 })),
        (
            "moldyn",
            moldyn::build_config(MoldynConfig {
                n: 300,
                steps: 1,
                neighbors: 6,
            }),
        ),
        ("kernel64", kernel::build(64, 200)),
    ];
    let schemes = [
        SchemeSpec::Ispbo,
        SchemeSpec::Spbo,
        SchemeSpec::IspboNo,
        SchemeSpec::IspboW,
    ];
    (0..n)
        .map(|i| {
            let (name, prog) = &programs[i % programs.len()];
            let scheme = schemes[(i / programs.len()) % schemes.len()].clone();
            Job::from_program(format!("{name}#{i}"), prog.clone()).scheme(scheme)
        })
        .collect()
}

fn flag_value(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// The wire-visible essence of a reply: what must match the fault-free
/// reference bit-for-bit when a job stays optimized. Attempts and
/// cache provenance legitimately vary under chaos.
fn wire_digest(r: &Response) -> (String, String, Option<u64>, Option<u64>, Option<u64>) {
    (
        r.id.clone(),
        r.status.clone(),
        r.types,
        r.baseline_cycles,
        r.optimized_cycles,
    )
}

/// One client-side request with retry over every socket fault: busy
/// rejects, shed replies, injected disconnects, slow-loris closes.
/// Returns the terminal reply and the number of retries it took.
fn send_with_retry(addr: &std::net::SocketAddr, line: &str, split_frame: bool) -> (Response, u64) {
    use std::io::{BufRead as _, BufReader, Write as _};
    let mut retries = 0u64;
    loop {
        assert!(retries < 200, "socket chaos never converged for `{line}`");
        let attempt = (|| -> Result<Option<Response>, std::io::Error> {
            let mut stream = std::net::TcpStream::connect(addr)?;
            stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
            if split_frame && line.len() > 4 {
                // Open a partial-frame window so the server's
                // slow-loris site has something to fire on.
                let (a, b) = line.split_at(line.len() / 2);
                stream.write_all(a.as_bytes())?;
                std::thread::sleep(std::time::Duration::from_millis(5));
                stream.write_all(format!("{b}\n").as_bytes())?;
            } else {
                // One segment per frame (avoids a Nagle stall).
                stream.write_all(format!("{line}\n").as_bytes())?;
            }
            let mut reply = String::new();
            if BufReader::new(stream).read_line(&mut reply)? == 0 {
                return Ok(None); // injected disconnect before the reply
            }
            Ok(Response::parse(reply.trim()).ok())
        })();
        match attempt {
            Ok(Some(r)) => match r.status.as_str() {
                // Transient, by protocol contract: honour the hint.
                "shed" => {
                    let hint = r.retry_after_ms.unwrap_or(10).min(100);
                    std::thread::sleep(std::time::Duration::from_millis(hint));
                }
                // `error` replies are transient under chaos: the
                // manifest fault sites garble request lines in flight,
                // and an error reply is the contract's answer to a
                // garbled frame (likewise slow-loris closes). A
                // *deterministic* error on a valid line can't hide
                // here — it would trip the convergence assert above.
                "error" => {}
                _ => return (r, retries),
            },
            Ok(None) | Err(_) => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
        retries += 1;
    }
}

/// The socket campaign: per seed, an in-process TCP server over a
/// chaos-enabled service (the plan drives the `net-*` fault sites),
/// hammered by retrying clients. Every valid line must land on the
/// fault-free wire digest or (at worst) degrade to advisory — never
/// fail, never change optimized bits, never lose a reply.
fn net_campaign(seeds: usize, seed_start: u64, json: bool) -> usize {
    let dir = std::env::temp_dir().join(format!("slo-chaos-net-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(
        dir.join("hot.sir"),
        "record pair { hot: i64, c1: i64, c2: i64 }\n\n\
         func main() -> i64 {\n\
         bb0:\n  r0 = alloc pair, 8\n  r1 = 0\n  jump bb1\n\
         bb1:\n  r2 = cmp.lt r1, 8\n  br r2, bb2, bb3\n\
         bb2:\n  r3 = indexaddr r0, pair, r1\n  r4 = fieldaddr r3, pair.hot\n\
         \x20 store r1, r4 : i64\n  r5 = load r4 : i64\n  r1 = add r1, 1\n  jump bb1\n\
         bb3:\n  r6 = fieldaddr r0, pair.c1\n  store 1, r6 : i64\n  r7 = load r6 : i64\n\
         \x20 ret r7\n}\n",
    )
    .expect("write hot.sir");
    std::fs::write(
        dir.join("tiny.sir"),
        "func main() -> i64 {\nbb0:\n  ret 40\n}\n",
    )
    .expect("write tiny.sir");
    let lines: Vec<String> = (0..12)
        .map(|i| {
            let file = if i % 2 == 0 { "hot.sir" } else { "tiny.sir" };
            let scheme = ["ispbo", "spbo"][(i / 2) % 2];
            format!("{file} scheme={scheme} steps={}", 1_000_000 + i)
        })
        .collect();

    // Fault-free reference digests, computed through the same wire
    // types the clients parse.
    let reference_svc = Service::new(ServiceConfig::builder().workers(1).build());
    let reference: Vec<_> = lines
        .iter()
        .map(|l| {
            let jobs = slo_service::parse_job_line(&dir, l).expect("valid line");
            let outcomes = reference_svc.run_batch(&jobs);
            wire_digest(&Response::from_outcome(&outcomes[0]))
        })
        .collect();

    let mut violations = 0usize;
    let mut rejected = 0u64;
    let mut shed = 0u64;
    let mut disconnects = 0u64;
    let mut slow_closes = 0u64;
    let mut client_retries = 0u64;
    for seed in seed_start..seed_start + seeds as u64 {
        let svc = Service::with_chaos(
            ServiceConfig::builder()
                .workers(2)
                .cache_capacity(64)
                .build(),
            slo_obs::Recorder::disabled(),
            FaultPlan::seeded(seed),
            RetryPolicy::default(),
            Clock::virtual_clock(),
        );
        let server = NetServer::bind(NetConfig {
            addr: "127.0.0.1:0".to_string(),
            dir: dir.clone(),
            max_clients: 8,
            max_inflight: 2,
            queue_capacity: 2,
            per_client_inflight: 8,
            read_timeout_ms: 50,
            retry_after_ms: 5,
            legacy: false,
        })
        .expect("bind");
        let addr = server.local_addr().expect("local addr");
        let mut replies: Vec<(usize, Response)> = Vec::new();
        std::thread::scope(|s| {
            let runner = s.spawn(|| server.run(&svc, None));
            let workers: Vec<_> = (0..4)
                .map(|w| {
                    let lines = &lines;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        let mut retries = 0u64;
                        for (i, line) in lines.iter().enumerate().skip(w).step_by(4) {
                            let split = (seed as usize + i) % 4 == 0;
                            let (r, n) = send_with_retry(&addr, line, split);
                            retries += n;
                            out.push((i, r));
                        }
                        (out, retries)
                    })
                })
                .collect();
            for w in workers {
                let (out, retries) = w.join().expect("client thread");
                replies.extend(out);
                client_retries += retries;
            }
            server.request_shutdown();
            runner.join().expect("server thread").expect("server run");
        });
        assert_eq!(replies.len(), lines.len(), "every line must be answered");
        for (i, r) in &replies {
            let want = &reference[*i];
            match r.status.as_str() {
                "optimized" => {
                    if &wire_digest(r) != want {
                        println!(
                            "FAIL: net seed {seed}: `{}` stayed optimized but its wire bits changed",
                            lines[*i]
                        );
                        violations += 1;
                    }
                }
                "advisory" => {} // down the ladder: allowed
                other => {
                    // `shed`/`error` never terminate the retry loop,
                    // so anything else here is `failed` — the rung
                    // reserved for unusable input this sweep never
                    // sends.
                    println!(
                        "FAIL: net seed {seed}: `{}` answered `{other}` on a valid line",
                        lines[*i]
                    );
                    violations += 1;
                }
            }
        }
        let net = server.metrics();
        println!(
            "net seed {seed}: {} accepted, {} rejected, {} shed, {} disconnect(s), \
             {} slow close(s), {} request(s)",
            net.accepted, net.rejected, net.shed, net.disconnects, net.slow_closes, net.requests
        );
        rejected += net.rejected;
        shed += net.shed;
        disconnects += net.disconnects;
        slow_closes += net.slow_closes;
    }
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "chaos.net: {seeds} seed(s) x {} lines, {rejected} rejected, {shed} shed, \
         {disconnects} disconnect(s), {slow_closes} slow close(s), {client_retries} client \
         retr{}, {violations} ladder violation(s)",
        lines.len(),
        if client_retries == 1 { "y" } else { "ies" },
    );
    if json {
        record_chaos_net(NetChaosStats {
            seeds,
            jobs_per_seed: lines.len(),
            violations,
            rejected,
            shed,
            disconnects,
            slow_closes,
            client_retries,
        });
    }
    violations
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = json_flag(&mut args);
    let net = {
        let before = args.len();
        args.retain(|a| a != "--net");
        args.len() != before
    };
    let seeds = flag_value(&args, "--seeds").unwrap_or(8);
    let seed_start = flag_value(&args, "--seed-start").unwrap_or(0) as u64;
    let num_jobs = flag_value(&args, "--jobs").unwrap_or(24);
    let jobs = build_jobs(num_jobs);

    // Fault-free reference: the bits every chaos-surviving Optimized
    // outcome must reproduce.
    let reference_svc = Service::new(
        ServiceConfig::builder()
            .workers(2)
            .cache_capacity(64)
            .build(),
    );
    let reference: Vec<String> = reference_svc.run_batch(&jobs).iter().map(digest).collect();
    let ref_optimized = reference
        .iter()
        .filter(|d| d.contains(" optimized "))
        .count();
    println!("reference: {num_jobs} jobs, {ref_optimized} optimized (fault-free)");

    let mut violations = 0usize;
    let mut optimized = 0u64;
    let mut advisory = 0u64;
    let mut faults = 0u64;
    let mut retries = 0u64;
    let mut quarantined = 0u64;
    for seed in seed_start..seed_start + seeds as u64 {
        let svc = Service::with_chaos(
            ServiceConfig::builder()
                .workers(2)
                .cache_capacity(64)
                .build(),
            slo_obs::Recorder::disabled(),
            FaultPlan::seeded(seed),
            RetryPolicy::default(),
            Clock::virtual_clock(),
        );
        let outcomes = svc.run_batch(&jobs);
        for (o, want) in outcomes.iter().zip(&reference) {
            match &o.status {
                JobStatus::Optimized(_) => {
                    if &digest(o) != want {
                        println!(
                            "FAIL: seed {seed}: {} stayed optimized but its bits changed",
                            o.id
                        );
                        violations += 1;
                    }
                }
                JobStatus::Advisory { .. } => {} // down the ladder: allowed
                JobStatus::Failed(msg) => {
                    println!(
                        "FAIL: seed {seed}: {} fell to failed on parseable input: {msg}",
                        o.id
                    );
                    violations += 1;
                }
            }
        }
        let m = svc.metrics();
        println!(
            "seed {seed}: {} optimized, {} advisory, {} failed; {} fault(s) injected, \
             {} retr{}, {} quarantined",
            m.optimized,
            m.degraded,
            m.failed,
            m.faults_injected_total(),
            m.retries,
            if m.retries == 1 { "y" } else { "ies" },
            m.quarantined
        );
        optimized += m.optimized;
        advisory += m.degraded;
        faults += m.faults_injected_total();
        retries += m.retries;
        quarantined += m.quarantined;
    }

    println!(
        "chaos: {seeds} seed(s) x {num_jobs} jobs, {faults} fault(s) injected, \
         {retries} retr{}, {quarantined} quarantined, {violations} ladder violation(s)",
        if retries == 1 { "y" } else { "ies" },
    );
    if json {
        record_chaos(ChaosStats {
            seeds,
            jobs_per_seed: num_jobs,
            violations,
            faults_injected: faults,
            retries,
            quarantined,
            optimized,
            advisory,
        });
    }
    // `--net` grows the campaign with the socket fault sites: the same
    // seeds, but delivered over real TCP through admission control.
    // Recorded under `chaos.net`, which must follow `record_chaos`
    // (that call replaces the whole `chaos` object).
    let net_violations = if net {
        net_campaign(seeds, seed_start, json)
    } else {
        0
    };
    if violations + net_violations > 0 {
        println!("FAIL: the degradation ladder was violated");
        std::process::exit(1);
    }
    println!("ok: faults only ever moved outcomes down the ladder");
}
