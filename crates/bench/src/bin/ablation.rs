//! Ablation studies for the design choices §2.3/§2.4 calls out:
//!
//! 1. **split threshold T_s sweep** — the paper sets 3% (PBO) / 7.5%
//!    (ISPBO) and notes both are "subject to continuous tweaking";
//! 2. **scaling exponent E sweep** — the paper sets E = 1.5 and argues it
//!    approximates raising the back-edge probabilities (ISPBO.W);
//! 3. **legality modes** — strict vs points-to-justified vs blanket
//!    relaxation, across the full benchmark suite (extends Table 1 with
//!    the sharper analysis the paper sketches).
//!
//! Every sweep point is an independent pipeline+VM measurement, so each
//! study fans out over all cores (`bench::par::par_map`) and prints its
//! rows in order afterwards. `--json` records the combined wall time and
//! simulated-instruction throughput in `BENCH_vm.json`.
//!
//! ```text
//! ablation            # all three studies
//! ablation ts         # only the threshold sweep
//! ablation exponent   # only the exponent sweep
//! ablation legality   # only the legality-mode comparison
//! ```

use bench::par::par_map;
use bench::report::{json_flag, record_table, TableStats};
use slo::analysis::{
    analyze_program, correlation, relative_hotness, IspboConfig, LegalityConfig, WeightScheme,
};
use slo::pipeline::{compile, evaluate, Evaluation, PipelineConfig};
use slo::vm::VmOptions;
use slo_transform::HeuristicsConfig;
use slo_workloads::{all, mcf, InputSet};

/// Simulated (instructions, cycles) one study executed, for `--json`.
type SimWork = (u64, u64);

fn sim(e: &Evaluation) -> SimWork {
    (
        e.baseline_instructions + e.optimized_instructions,
        e.baseline_cycles + e.optimized_cycles,
    )
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = json_flag(&mut args);
    let t0 = std::time::Instant::now();
    let which = args.first().cloned().unwrap_or_else(|| "all".to_string());

    let mut work: Vec<SimWork> = Vec::new();
    if matches!(which.as_str(), "all" | "ts") {
        work.push(threshold_sweep());
    }
    if matches!(which.as_str(), "all" | "exponent") {
        exponent_sweep();
    }
    if matches!(which.as_str(), "all" | "legality") {
        legality_modes();
    }
    if matches!(which.as_str(), "all" | "interleave") {
        work.push(interleave_vs_peel());
    }

    if json {
        record_table(
            "ablation",
            TableStats {
                wall_seconds: t0.elapsed().as_secs_f64(),
                instructions: work.iter().map(|w| w.0).sum(),
                cycles: work.iter().map(|w| w.1).sum(),
            },
        );
    }
}

/// §2.1's alternative implementation: instance interleaving (one
/// allocation, field regions) against separate-array peeling on art.
fn interleave_vs_peel() -> SimWork {
    println!("== ablation: peeling vs instance interleaving (art) ==");
    let prog = slo_workloads::art::build_config(slo_workloads::art::ArtConfig {
        n: 100_000,
        passes: 12,
    });
    let configs = [("peel (separate)", false), ("interleave", true)];
    let evals = par_map(&configs, |&(_, prefer)| {
        let cfg = PipelineConfig::builder()
            .heuristics(
                HeuristicsConfig::builder()
                    .split_threshold(7.5)
                    .prefer_interleave(prefer)
                    .build(),
            )
            .build();
        let res = compile(&prog, &WeightScheme::Ispbo, &cfg).expect("pipeline");
        evaluate(&prog, &res.program, &VmOptions::default()).expect("evaluate")
    });
    for ((label, _), eval) in configs.iter().zip(&evals) {
        println!("  {label:<18} {:+7.1}%", eval.speedup_percent());
    }
    println!(
        "(the paper: both avoid link pointers; interleaving needs a compile-time size bound)
"
    );
    evals
        .iter()
        .map(sim)
        .fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
}

/// Sweep T_s on mcf under PBO: too low leaves cold fields in the root,
/// too high splits out hot fields (the §2.4 anecdote territory).
fn threshold_sweep() -> SimWork {
    println!("== ablation: split threshold T_s (mcf, PBO) ==");
    println!("{:>6} {:>6} {:>6} {:>9}", "T_s%", "T_t", "S", "perf%");
    let prog = mcf::build_config(mcf::McfConfig {
        n: 57_000,
        iters: 40,
        skew: 0,
    });
    let fb = slo::collect_profile(&prog).expect("profile");
    let sweep = [0.5, 1.0, 3.0, 7.5, 15.0, 30.0, 60.0];
    let rows = par_map(&sweep, |&ts| {
        let cfg = PipelineConfig::builder().split_threshold(ts).build();
        let res = compile(&prog, &WeightScheme::Pbo(&fb), &cfg).expect("pipeline");
        let mut split = 0;
        for t in res.plan.types.values() {
            split += t.sd_count().0;
        }
        let eval = evaluate(&prog, &res.program, &VmOptions::default()).expect("evaluate");
        (res.plan.num_transformed(), split, eval)
    });
    for (&ts, (transformed, split, eval)) in sweep.iter().zip(&rows) {
        println!(
            "{ts:>6.1} {transformed:>6} {split:>6} {:>9.1}",
            eval.speedup_percent()
        );
    }
    println!("(the paper's default: 3.0 with PBO)\n");
    rows.iter()
        .map(|(_, _, e)| sim(e))
        .fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
}

/// Sweep the exponent E: correlation of the resulting hotness ranking to
/// the PBO baseline (the paper: E = 1.5 "improves the separability
/// between hot and cold fields"; 1.0 is ISPBO.NO).
fn exponent_sweep() {
    println!("== ablation: ISPBO scaling exponent E (mcf node_t) ==");
    println!("{:>6} {:>8} {:>8}", "E", "r", "rare%");
    let prog = mcf::build_config(mcf::McfConfig {
        n: 2_000,
        iters: 60,
        skew: 0,
    });
    let node = prog.types.record_by_name("node").expect("node");
    let fb = slo::collect_profile(&prog).expect("profile");
    let pbo = relative_hotness(&prog, node, &WeightScheme::Pbo(&fb));
    let rare_idx = mcf::NODE_FIELDS
        .iter()
        .position(|f| *f == "firstout")
        .expect("field");
    let sweep = [0.5, 1.0, 1.25, 1.5, 2.0, 3.0];
    let rows = par_map(&sweep, |&e| {
        let scheme = WeightScheme::IspboCustom(IspboConfig {
            exponent: e,
            ..Default::default()
        });
        let rel = relative_hotness(&prog, node, &scheme);
        (correlation(&pbo, &rel), rel[rare_idx])
    });
    for (&e, &(r, rare)) in sweep.iter().zip(&rows) {
        println!("{e:>6.2} {r:>8.3} {rare:>8.2}");
    }
    println!("(the paper's default: 1.50; rare% = firstout's relative hotness, PBO sees ~1%)\n");
}

/// Compare legality modes over the whole suite: the points-to-justified
/// relaxation lands between strict and blanket.
fn legality_modes() {
    println!("== ablation: legality modes across the suite ==");
    println!(
        "{:<12} {:>6} {:>8} {:>10} {:>8}",
        "Benchmark", "Types", "strict", "pointsto", "blanket"
    );
    let workloads = all(InputSet::Training);
    let rows = par_map(&workloads, |w| {
        let strict = analyze_program(&w.program, &LegalityConfig::default()).num_legal();
        let pointsto = analyze_program(
            &w.program,
            &LegalityConfig {
                pointsto_relax: true,
                ..Default::default()
            },
        )
        .num_legal();
        let blanket = analyze_program(
            &w.program,
            &LegalityConfig {
                relax_cast_addr: true,
                ..Default::default()
            },
        )
        .num_legal();
        (strict, pointsto, blanket)
    });
    let mut totals = (0usize, 0usize, 0usize, 0usize);
    for (w, &(strict, pointsto, blanket)) in workloads.iter().zip(&rows) {
        println!(
            "{:<12} {:>6} {:>8} {:>10} {:>8}",
            w.name, w.paper.types, strict, pointsto, blanket
        );
        totals.0 += w.paper.types;
        totals.1 += strict;
        totals.2 += pointsto;
        totals.3 += blanket;
        assert!(strict <= pointsto && pointsto <= blanket, "mode ordering");
    }
    println!(
        "{:<12} {:>6} {:>8} {:>10} {:>8}",
        "Total:", totals.0, totals.1, totals.2, totals.3
    );
    println!("(strict ≤ points-to-justified ≤ blanket, per construction)\n");
}
