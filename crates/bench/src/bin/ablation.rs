//! Ablation studies for the design choices §2.3/§2.4 calls out:
//!
//! 1. **split threshold T_s sweep** — the paper sets 3% (PBO) / 7.5%
//!    (ISPBO) and notes both are "subject to continuous tweaking";
//! 2. **scaling exponent E sweep** — the paper sets E = 1.5 and argues it
//!    approximates raising the back-edge probabilities (ISPBO.W);
//! 3. **legality modes** — strict vs points-to-justified vs blanket
//!    relaxation, across the full benchmark suite (extends Table 1 with
//!    the sharper analysis the paper sketches).
//!
//! ```text
//! ablation            # all three studies
//! ablation ts         # only the threshold sweep
//! ablation exponent   # only the exponent sweep
//! ablation legality   # only the legality-mode comparison
//! ```

use slo::analysis::{
    analyze_program, correlation, relative_hotness, IspboConfig, LegalityConfig, WeightScheme,
};
use slo::pipeline::{compile, evaluate, PipelineConfig};
use slo::vm::VmOptions;
use slo_transform::HeuristicsConfig;
use slo_workloads::{all, mcf, InputSet};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    if matches!(which.as_str(), "all" | "ts") {
        threshold_sweep();
    }
    if matches!(which.as_str(), "all" | "exponent") {
        exponent_sweep();
    }
    if matches!(which.as_str(), "all" | "legality") {
        legality_modes();
    }
    if matches!(which.as_str(), "all" | "interleave") {
        interleave_vs_peel();
    }
}

/// §2.1's alternative implementation: instance interleaving (one
/// allocation, field regions) against separate-array peeling on art.
fn interleave_vs_peel() {
    println!("== ablation: peeling vs instance interleaving (art) ==");
    let prog = slo_workloads::art::build_config(slo_workloads::art::ArtConfig {
        n: 100_000,
        passes: 12,
    });
    for (label, prefer) in [("peel (separate)", false), ("interleave", true)] {
        let cfg = PipelineConfig {
            heuristics: Some(HeuristicsConfig {
                prefer_interleave: prefer,
                ..HeuristicsConfig::ispbo()
            }),
            ..Default::default()
        };
        let res = compile(&prog, &WeightScheme::Ispbo, &cfg).expect("pipeline");
        let eval = evaluate(&prog, &res.program, &VmOptions::default()).expect("evaluate");
        println!("  {label:<18} {:+7.1}%", eval.speedup_percent());
    }
    println!("(the paper: both avoid link pointers; interleaving needs a compile-time size bound)
");
}

/// Sweep T_s on mcf under PBO: too low leaves cold fields in the root,
/// too high splits out hot fields (the §2.4 anecdote territory).
fn threshold_sweep() {
    println!("== ablation: split threshold T_s (mcf, PBO) ==");
    println!("{:>6} {:>6} {:>6} {:>9}", "T_s%", "T_t", "S", "perf%");
    let prog = mcf::build_config(mcf::McfConfig {
        n: 57_000,
        iters: 40,
        skew: 0,
    });
    let fb = slo::collect_profile(&prog).expect("profile");
    for ts in [0.5, 1.0, 3.0, 7.5, 15.0, 30.0, 60.0] {
        let cfg = PipelineConfig {
            heuristics: Some(HeuristicsConfig {
                split_threshold: ts,
                ..HeuristicsConfig::pbo()
            }),
            ..Default::default()
        };
        let res = compile(&prog, &WeightScheme::Pbo(&fb), &cfg).expect("pipeline");
        let mut split = 0;
        for t in res.plan.types.values() {
            split += t.sd_count().0;
        }
        let eval = evaluate(&prog, &res.program, &VmOptions::default()).expect("evaluate");
        println!(
            "{ts:>6.1} {:>6} {:>6} {:>9.1}",
            res.plan.num_transformed(),
            split,
            eval.speedup_percent()
        );
    }
    println!("(the paper's default: 3.0 with PBO)\n");
}

/// Sweep the exponent E: correlation of the resulting hotness ranking to
/// the PBO baseline (the paper: E = 1.5 "improves the separability
/// between hot and cold fields"; 1.0 is ISPBO.NO).
fn exponent_sweep() {
    println!("== ablation: ISPBO scaling exponent E (mcf node_t) ==");
    println!("{:>6} {:>8} {:>8}", "E", "r", "rare%");
    let prog = mcf::build_config(mcf::McfConfig {
        n: 2_000,
        iters: 60,
        skew: 0,
    });
    let node = prog.types.record_by_name("node").expect("node");
    let fb = slo::collect_profile(&prog).expect("profile");
    let pbo = relative_hotness(&prog, node, &WeightScheme::Pbo(&fb));
    let rare_idx = mcf::NODE_FIELDS
        .iter()
        .position(|f| *f == "firstout")
        .expect("field");
    for e in [0.5, 1.0, 1.25, 1.5, 2.0, 3.0] {
        let scheme = WeightScheme::IspboCustom(IspboConfig {
            exponent: e,
            ..Default::default()
        });
        let rel = relative_hotness(&prog, node, &scheme);
        println!(
            "{e:>6.2} {:>8.3} {:>8.2}",
            correlation(&pbo, &rel),
            rel[rare_idx]
        );
    }
    println!("(the paper's default: 1.50; rare% = firstout's relative hotness, PBO sees ~1%)\n");
}

/// Compare legality modes over the whole suite: the points-to-justified
/// relaxation lands between strict and blanket.
fn legality_modes() {
    println!("== ablation: legality modes across the suite ==");
    println!(
        "{:<12} {:>6} {:>8} {:>10} {:>8}",
        "Benchmark", "Types", "strict", "pointsto", "blanket"
    );
    let mut totals = (0usize, 0usize, 0usize, 0usize);
    for w in all(InputSet::Training) {
        let strict = analyze_program(&w.program, &LegalityConfig::default()).num_legal();
        let pointsto = analyze_program(
            &w.program,
            &LegalityConfig {
                pointsto_relax: true,
                ..Default::default()
            },
        )
        .num_legal();
        let blanket = analyze_program(
            &w.program,
            &LegalityConfig {
                relax_cast_addr: true,
                ..Default::default()
            },
        )
        .num_legal();
        println!(
            "{:<12} {:>6} {:>8} {:>10} {:>8}",
            w.name, w.paper.types, strict, pointsto, blanket
        );
        totals.0 += w.paper.types;
        totals.1 += strict;
        totals.2 += pointsto;
        totals.3 += blanket;
        assert!(strict <= pointsto && pointsto <= blanket, "mode ordering");
    }
    println!(
        "{:<12} {:>6} {:>8} {:>10} {:>8}",
        "Total:", totals.0, totals.1, totals.2, totals.3
    );
    println!("(strict ≤ points-to-justified ≤ blanket, per construction)\n");
}
