//! Regenerates **Table 1**: "Types and transformable types, with and
//! without CSTF, CSTT, ATKN".
//!
//! For each of the twelve benchmarks, runs the FE legality pass + IPA
//! aggregation twice — strict and with the cast/address tests relaxed —
//! and prints the paper's columns next to the measured ones. The twelve
//! analyses are independent and run in parallel; `--json` records the
//! driver's wall time in `BENCH_vm.json` (this table executes nothing on
//! the VM, so its simulated-instruction count is zero).

use bench::par::par_map;
use bench::report::{json_flag, record_table, TableStats};
use slo::analysis::{analyze_program, LegalityConfig};
use slo_workloads::{all, InputSet};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = json_flag(&mut args);
    let t0 = std::time::Instant::now();

    println!("Table 1 — types and transformable types, strict vs relaxed analysis");
    println!(
        "{:<12} {:>6} {:>7} {:>7} {:>7} {:>7}   (paper: {:>5} {:>5} {:>5})",
        "Benchmark", "Types", "Legal", "%", "Relax", "%", "Types", "Legal", "Relax"
    );

    let workloads = all(InputSet::Training);
    let n = workloads.len();
    // (types, legal, relaxed-legal) per benchmark, computed in parallel
    let counts = par_map(&workloads, |w| {
        let strict = analyze_program(&w.program, &LegalityConfig::default());
        let relaxed = analyze_program(
            &w.program,
            &LegalityConfig {
                relax_cast_addr: true,
                ..Default::default()
            },
        );
        (strict.num_types(), strict.num_legal(), relaxed.num_legal())
    });

    let mut sum_legal_pct = 0.0;
    let mut sum_relax_pct = 0.0;
    for (w, &(types, legal, relax)) in workloads.iter().zip(&counts) {
        let lp = legal as f64 / types as f64 * 100.0;
        let rp = relax as f64 / types as f64 * 100.0;
        sum_legal_pct += lp;
        sum_relax_pct += rp;
        println!(
            "{:<12} {types:>6} {legal:>7} {lp:>7.1} {relax:>7} {rp:>7.1}   (paper: {:>5} {:>5} {:>5})",
            w.name, w.paper.types, w.paper.legal, w.paper.relax
        );
    }
    println!(
        "{:<12} {:>6} {:>7} {:>7.1} {:>7} {:>7.1}   (paper:          20.9%  65.7%)",
        "Average:",
        "",
        "",
        sum_legal_pct / n as f64,
        "",
        sum_relax_pct / n as f64
    );

    if json {
        record_table(
            "table1",
            TableStats {
                wall_seconds: t0.elapsed().as_secs_f64(),
                instructions: 0,
                cycles: 0,
            },
        );
    }
}
