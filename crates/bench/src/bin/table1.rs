//! Regenerates **Table 1**: "Types and transformable types, with and
//! without CSTF, CSTT, ATKN".
//!
//! For each of the twelve benchmarks, runs the FE legality pass + IPA
//! aggregation twice — strict and with the cast/address tests relaxed —
//! and prints the paper's columns next to the measured ones.

use slo::analysis::{analyze_program, LegalityConfig};
use slo_workloads::{all, InputSet};

fn main() {
    println!("Table 1 — types and transformable types, strict vs relaxed analysis");
    println!(
        "{:<12} {:>6} {:>7} {:>7} {:>7} {:>7}   (paper: {:>5} {:>5} {:>5})",
        "Benchmark", "Types", "Legal", "%", "Relax", "%", "Types", "Legal", "Relax"
    );

    let mut sum_legal_pct = 0.0;
    let mut sum_relax_pct = 0.0;
    let workloads = all(InputSet::Training);
    let n = workloads.len();

    for w in &workloads {
        let strict = analyze_program(&w.program, &LegalityConfig::default());
        let relaxed = analyze_program(
            &w.program,
            &LegalityConfig {
                relax_cast_addr: true,
                ..Default::default()
            },
        );
        let types = strict.num_types();
        let legal = strict.num_legal();
        let relax = relaxed.num_legal();
        let lp = legal as f64 / types as f64 * 100.0;
        let rp = relax as f64 / types as f64 * 100.0;
        sum_legal_pct += lp;
        sum_relax_pct += rp;
        println!(
            "{:<12} {types:>6} {legal:>7} {lp:>7.1} {relax:>7} {rp:>7.1}   (paper: {:>5} {:>5} {:>5})",
            w.name, w.paper.types, w.paper.legal, w.paper.relax
        );
    }
    println!(
        "{:<12} {:>6} {:>7} {:>7.1} {:>7} {:>7.1}   (paper:          20.9%  65.7%)",
        "Average:",
        "",
        "",
        sum_legal_pct / n as f64,
        "",
        sum_relax_pct / n as f64
    );
}
