//! TCP load driver: latency and shed-rate under concurrent clients.
//!
//! Stands up an in-process [`slo_service::NetServer`] over a clean
//! service, then hammers it with N persistent client connections each
//! issuing job lines back-to-back. Measures per-request reply latency
//! (write → full reply line) over completed requests and the shed
//! rate the admission controller imposed. `--json` merges the tallies
//! into `BENCH_vm.json` under `load` (`load.p50_ms`, `load.p99_ms`,
//! `load.shed_rate`, ...).
//!
//! ```text
//! load [--clients N] [--requests N] [--inflight N] [--queue N]
//!      [--force-overload] [--json]
//! ```
//!
//! `--force-overload` clamps the admission pool to one permit and a
//! zero-length queue so concurrent clients *must* collide: the driver
//! then exits nonzero unless the server shed at least once — the
//! backpressure path is load-bearing, not decorative. In either mode
//! a lost or unparseable reply is fatal: every request gets exactly
//! one well-formed reply.

use bench::report::{json_flag, record_load, LoadStats};
use slo_service::{NetConfig, NetServer, Response, Service, ServiceConfig};
use std::time::{Duration, Instant};

fn flag_value(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn bool_flag(args: &mut Vec<String>, name: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != name);
    args.len() != before
}

/// One client: a persistent connection issuing `requests` job lines
/// sequentially. Shed replies are counted and retried after the
/// server's hint; completed latencies are returned in milliseconds.
fn run_client(addr: &std::net::SocketAddr, line: &str, requests: usize) -> (Vec<f64>, usize) {
    use std::io::{BufRead as _, BufReader, Write as _};
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    // One write per request: a split line + newline would cross two
    // TCP segments and eat a Nagle/delayed-ACK stall per request.
    let frame = format!("{line}\n");
    let mut latencies = Vec::with_capacity(requests);
    let mut sheds = 0usize;
    let mut completed = 0usize;
    let mut attempts = 0usize;
    while completed < requests {
        attempts += 1;
        assert!(
            attempts <= requests * 200,
            "server never admitted this client's work"
        );
        let t0 = Instant::now();
        writer.write_all(frame.as_bytes()).expect("write frame");
        let mut reply = String::new();
        let n = reader.read_line(&mut reply).expect("read reply");
        assert!(n > 0, "reply lost: connection closed mid-session");
        let r = Response::parse(reply.trim()).expect("reply must parse");
        match r.status.as_str() {
            "shed" => {
                let hint = r.retry_after_ms.expect("shed replies carry retry_after_ms");
                sheds += 1;
                std::thread::sleep(Duration::from_millis(hint.min(50)));
            }
            "optimized" | "advisory" => {
                latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                completed += 1;
            }
            other => panic!("unexpected reply status `{other}`: {reply}"),
        }
    }
    (latencies, sheds)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = json_flag(&mut args);
    let force_overload = bool_flag(&mut args, "--force-overload");
    let clients = flag_value(&args, "--clients").unwrap_or(8);
    let requests = flag_value(&args, "--requests").unwrap_or(32);
    let inflight = flag_value(&args, "--inflight").unwrap_or(if force_overload { 1 } else { 4 });
    let queue = flag_value(&args, "--queue").unwrap_or(if force_overload { 0 } else { 16 });

    let dir = std::env::temp_dir().join(format!("slo-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(
        dir.join("job.sir"),
        "record pair { hot: i64, c1: i64, c2: i64 }\n\n\
         func main() -> i64 {\n\
         bb0:\n  r0 = alloc pair, 16\n  r1 = 0\n  jump bb1\n\
         bb1:\n  r2 = cmp.lt r1, 16\n  br r2, bb2, bb3\n\
         bb2:\n  r3 = indexaddr r0, pair, r1\n  r4 = fieldaddr r3, pair.hot\n\
         \x20 store r1, r4 : i64\n  r5 = load r4 : i64\n  r1 = add r1, 1\n  jump bb1\n\
         bb3:\n  r6 = fieldaddr r0, pair.c1\n  store 1, r6 : i64\n  r7 = load r6 : i64\n\
         \x20 ret r7\n}\n",
    )
    .expect("write job.sir");
    const LINE: &str = "job.sir scheme=ispbo";

    // Per-client fairness is keyed by peer IP and every load client is
    // 127.0.0.1, so the per-client share is what saturates first:
    // clamp it to 1 under forced overload, open it up otherwise.
    let service = Service::new(
        ServiceConfig::builder()
            .workers(inflight.max(1))
            .cache_capacity(64)
            .build(),
    );
    let server = NetServer::bind(NetConfig {
        addr: "127.0.0.1:0".to_string(),
        dir: dir.clone(),
        max_clients: clients + 4,
        max_inflight: inflight,
        queue_capacity: queue,
        per_client_inflight: if force_overload { 1 } else { clients.max(1) },
        read_timeout_ms: 10_000,
        retry_after_ms: 2,
        legacy: false,
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr");

    println!(
        "load: {clients} client(s) x {requests} request(s), inflight {inflight}, queue {queue}{}",
        if force_overload {
            ", forced overload"
        } else {
            ""
        }
    );
    let t0 = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    let mut sheds = 0usize;
    std::thread::scope(|s| {
        let runner = s.spawn(|| server.run(&service, None));
        let workers: Vec<_> = (0..clients)
            .map(|_| s.spawn(|| run_client(&addr, LINE, requests)))
            .collect();
        for w in workers {
            let (lat, shed) = w.join().expect("client thread");
            latencies.extend(lat);
            sheds += shed;
        }
        server.request_shutdown();
        runner.join().expect("server thread").expect("server run");
    });
    let wall = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);

    let completed = latencies.len();
    assert_eq!(
        completed,
        clients * requests,
        "every request must complete exactly once"
    );
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let stats = LoadStats {
        clients,
        completed,
        sheds,
        shed_rate: sheds as f64 / (completed + sheds).max(1) as f64,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        throughput_rps: completed as f64 / wall.max(1e-9),
        wall_seconds: wall,
    };
    println!(
        "load: {} completed, {} shed ({:.1}%), p50 {:.2} ms, p99 {:.2} ms, {:.0} req/s in {:.2} s",
        stats.completed,
        stats.sheds,
        100.0 * stats.shed_rate,
        stats.p50_ms,
        stats.p99_ms,
        stats.throughput_rps,
        stats.wall_seconds
    );
    if json {
        record_load(stats);
    }
    if force_overload && sheds == 0 {
        println!("FAIL: forced overload produced zero sheds — backpressure is not engaging");
        std::process::exit(1);
    }
    println!("ok: every request answered; overload sheds with retry-after instead of buffering");
}
