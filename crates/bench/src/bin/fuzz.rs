//! Differential transform fuzzer driver (the CI smoke job's entry
//! point).
//!
//! Runs a `slo-fuzz` campaign: random well-typed programs through the
//! full analyze → plan → transform pipeline, executed on both VM
//! engines, with every semantic invariant checked. On a violation the
//! failing program is shrunk and the minimized textual-IR repro is
//! written to `fuzz/regressions/` (override with `--artifacts DIR`),
//! then the process exits non-zero.
//!
//! ```text
//! fuzz [--cases N] [--seed S] [--budget-secs T] [--hot-every K]
//!      [--shrink-secs T] [--mutate field-off-by-one|drop-store]
//!      [--artifacts DIR] [--json]
//! ```
//!
//! `--mutate` injects a deliberate bug into every transformed program,
//! so the campaign is *expected* to fail — used to prove the oracle has
//! teeth. `--json` records wall time under `tables.fuzz` in
//! `BENCH_vm.json` (path overridable via `BENCH_JSON_PATH`).

use bench::report::{json_flag, record_table, TableStats};
use slo_fuzz::{FuzzConfig, Mutation};

fn parse_args(args: &[String]) -> Result<FuzzConfig, String> {
    let mut cfg = FuzzConfig {
        budget_secs: Some(75),
        ..FuzzConfig::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--cases" => cfg.cases = val("--cases")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => cfg.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--budget-secs" => {
                cfg.budget_secs = Some(val("--budget-secs")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--no-budget" => cfg.budget_secs = None,
            "--hot-every" => {
                cfg.hot_every = val("--hot-every")?.parse().map_err(|e| format!("{e}"))?
            }
            "--shrink-secs" => {
                cfg.shrink_secs = val("--shrink-secs")?.parse().map_err(|e| format!("{e}"))?
            }
            "--artifacts" => cfg.artifacts_dir = Some(val("--artifacts")?.into()),
            "--mutate" => {
                cfg.oracle.mutation = Some(match val("--mutate")?.as_str() {
                    "field-off-by-one" => Mutation::FieldAddrOffByOne,
                    "drop-store" => Mutation::DropStore,
                    other => return Err(format!("unknown mutation `{other}`")),
                })
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cfg)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = json_flag(&mut args);
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("fuzz: {e}");
            std::process::exit(2);
        }
    };

    let budget = cfg
        .budget_secs
        .map_or("none".to_string(), |s| format!("{s}s"));
    println!(
        "fuzz: {} cases, seed {}, budget {budget}, hot every {}, mutation {:?}",
        cfg.cases, cfg.seed, cfg.hot_every, cfg.oracle.mutation
    );
    let report = slo_fuzz::run_fuzz(&cfg);
    println!(
        "fuzz: ran {} cases ({} hot) in {:.1}s — {} plans applied, {} layout variants checked{}",
        report.cases_run,
        report.hot_cases,
        report.elapsed_secs,
        report.plans_applied,
        report.variants_checked,
        if report.budget_exhausted {
            " (time budget exhausted)"
        } else {
            ""
        }
    );
    if json {
        record_table(
            "fuzz",
            TableStats {
                wall_seconds: report.elapsed_secs,
                instructions: 0,
                cycles: 0,
            },
        );
    }
    if let Some(f) = &report.failure {
        eprintln!(
            "fuzz: VIOLATION in case {} (seed {:#018x}): {}",
            f.case, f.case_seed, f.violation
        );
        eprintln!("fuzz: minimized to {} lines:", f.minimized_lines);
        eprintln!("{}", f.minimized);
        if let Some(p) = &f.artifact {
            eprintln!("fuzz: repro written to {}", p.display());
        }
        std::process::exit(1);
    }
    println!("fuzz: no violations");
}
