//! Regenerates **Table 2**: "Relative field hotness for a variety of
//! experiments and their correlation to PBO" — the mcf `node_t` study.
//!
//! Columns:
//! * PBO — edge profile from the *training* input,
//! * PPBO — edge profile from the *reference* input ("perfect PBO"),
//! * SPBO / ISPBO / ISPBO.NO / ISPBO.W — the static estimator family,
//! * DMISS / DLAT — d-cache events attributed to fields (instrumented
//!   run), DMISS.NO — the same without instrumentation,
//!
//! plus the correlation rows `r` (all fields) and `r'` (ignoring the
//! dominant field, `potential`).

use bench::par::par_map;
use bench::report::{json_flag, record_table, TableStats};
use slo::analysis::{
    argmax, attribute_samples, correlation, correlation_excluding, relative_hotness, WeightScheme,
};
use slo_ir::Program;
use slo_vm::VmOptions;
use slo_workloads::mcf::{build, NODE_FIELDS, PAPER_PBO_HOTNESS};
use slo_workloads::InputSet;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = json_flag(&mut args);
    let t0 = std::time::Instant::now();

    let train = build(InputSet::Training);
    let node = train.types.record_by_name("node").expect("node type");
    let refp = build(InputSet::Reference);

    // The three instrumented runs are independent; run them in parallel:
    // training profile (PBO, DMISS, DLAT), reference profile (PPBO), and
    // sampling without instrumentation (DMISS.NO).
    let runs: Vec<(&Program, VmOptions)> = vec![
        (&train, VmOptions::profiling()),
        (&refp, VmOptions::profiling()),
        (&train, VmOptions::sampling_only()),
    ];
    let mut outs = par_map(&runs, |(p, opts)| {
        slo_vm::run(p, opts).expect("instrumented run")
    });
    let plain = outs.pop().expect("three runs");
    let ref_prof = outs.pop().expect("three runs");
    let prof = outs.pop().expect("three runs");

    let pbo = relative_hotness(&train, node, &WeightScheme::Pbo(&prof.feedback));
    let ppbo = relative_hotness(&refp, node, &WeightScheme::Ppbo(&ref_prof.feedback));
    let spbo = relative_hotness(&train, node, &WeightScheme::Spbo);
    let ispbo = relative_hotness(&train, node, &WeightScheme::Ispbo);
    let ispbo_no = relative_hotness(&train, node, &WeightScheme::IspboNo);
    let ispbo_w = relative_hotness(&train, node, &WeightScheme::IspboW);

    let dc = attribute_samples(&train, &prof.feedback);
    let dmiss = slo::analysis::dcache::relative_misses(&train, node, &dc);
    let dlat = slo::analysis::dcache::relative_latencies(&train, node, &dc);
    let dc_no = attribute_samples(&train, &plain.feedback);
    let dmiss_no = slo::analysis::dcache::relative_misses(&train, node, &dc_no);

    let cols: Vec<(&str, &Vec<f64>)> = vec![
        ("PBO", &pbo),
        ("PPBO", &ppbo),
        ("SPBO", &spbo),
        ("ISPBO", &ispbo),
        ("ISPBO.NO", &ispbo_no),
        ("ISPBO.W", &ispbo_w),
        ("DMISS", &dmiss),
        ("DLAT", &dlat),
        ("DMISS.NO", &dmiss_no),
    ];

    println!("Table 2 — relative field hotness of mcf node_t (percent of hottest)");
    print!("{:<14}", "Field");
    for (name, _) in &cols {
        print!("{name:>10}");
    }
    println!("{:>10}", "paper.PBO");
    for (i, f) in NODE_FIELDS.iter().enumerate() {
        print!("{f:<14}");
        for (_, v) in &cols {
            print!("{:>10.1}", v[i]);
        }
        println!("{:>10.1}", PAPER_PBO_HOTNESS[i]);
    }

    // correlations against our PBO baseline
    let dominant = argmax(&pbo).expect("non-empty hotness vector");
    print!("{:<14}", "r");
    for (_, v) in &cols {
        print!("{:>10.3}", correlation(&pbo, v));
    }
    println!();
    print!("{:<14}", "r'");
    for (_, v) in &cols {
        print!("{:>10.3}", correlation_excluding(&pbo, v, dominant));
    }
    println!();
    println!();
    println!(
        "paper correlations: PPBO 0.986, SPBO 0.693, ISPBO 0.891, ISPBO.NO 0.811, \
         ISPBO.W 0.782, DMISS 0.687, DLAT 0.686, DMISS.NO 0.686"
    );
    println!(
        "correlation(PBO, paper PBO column) = {:.3}",
        correlation(&pbo, &PAPER_PBO_HOTNESS)
    );
    println!(
        "correlation(DMISS, DMISS.NO) = {:.3}  (paper: 0.996 — instrumentation \
         barely disturbs sampling)",
        correlation(&dmiss, &dmiss_no)
    );

    if json {
        let stats = [&prof, &ref_prof, &plain];
        record_table(
            "table2",
            TableStats {
                wall_seconds: t0.elapsed().as_secs_f64(),
                instructions: stats.iter().map(|o| o.stats.instructions).sum(),
                cycles: stats.iter().map(|o| o.stats.cycles).sum(),
            },
        );
    }
}
