//! Regenerates **Figure 2**: the advisory tool's annotated type layout
//! output for the mcf workload, plus the VCG control file for the `node`
//! affinity graph (§3.2).

use slo::advisor::{render_report, render_vcg, AdvisorInput};
use slo::analysis::{affinity_graphs, attribute_samples, block_frequencies, WeightScheme};
use slo::pipeline::PipelineConfig;
use slo_vm::VmOptions;
use slo_workloads::mcf::build;
use slo_workloads::InputSet;

fn main() {
    let prog = build(InputSet::Training);
    let prof = slo_vm::run(&prog, &VmOptions::profiling()).expect("profiling run");
    let scheme = WeightScheme::Pbo(&prof.feedback);

    let res = slo::compile(&prog, &scheme, &PipelineConfig::default()).expect("pipeline");
    let graphs = affinity_graphs(&prog, &scheme);
    let freqs = block_frequencies(&prog, &scheme);
    let counts = slo::analysis::affinity::build_field_counts(&prog, &freqs);
    let dcache = attribute_samples(&prog, &prof.feedback);
    let strides = slo::analysis::attribute_strides(&prog, &prof.feedback);

    let input = AdvisorInput {
        prog: &prog,
        ipa: &res.ipa,
        graphs: &graphs,
        counts: &counts,
        dcache: Some(&dcache),
        strides: Some(&strides),
        plan: Some(&res.plan),
    };
    println!("{}", render_report(&input));

    let node = prog.types.record_by_name("node").expect("node type");
    println!("---- VCG control file for `node` ----");
    println!("{}", render_vcg(&prog, node, &graphs[&node]));

    // concrete reordering suggestion (the §3.4 hand-applied advice)
    let suggestion = slo::advisor::suggest_layout(&prog, node, &graphs[&node], 10.0);
    if suggestion.is_nontrivial() {
        println!("{}", slo::advisor::render_suggestion(&prog, &suggestion));
    }

    // §3.3 scenario classification for the hottest type
    println!("---- layout advice for `node` ----");
    for advice in slo::advisor::classify(
        &prog,
        node,
        &graphs[&node],
        &counts,
        Some(&dcache),
        &slo::advisor::ScenarioConfig::default(),
    ) {
        println!("  * {advice}");
    }
}
