//! Regenerates the §3.4 case studies and the §2.4 splitting-cost
//! anecdote.
//!
//! ```text
//! casestudies              # run all
//! casestudies mcf-force    # only the §2.4 forced-split experiment
//! casestudies hot-grouping # only the C++ hot-field-grouping study
//! casestudies two-field-peel # only the C two-field peeling study
//! ```

use slo::pipeline::evaluate;
use slo_transform::{apply_plan, forced_split, peel_by_name, reorder_by_names};
use slo_vm::VmOptions;
use slo_workloads::casestudy::{cpp_grouped_order, spec2006_c, spec2006_cpp};
use slo_workloads::mcf::build as build_mcf;
use slo_workloads::InputSet;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    if matches!(which.as_str(), "all" | "mcf-force") {
        mcf_force();
    }
    if matches!(which.as_str(), "all" | "hot-grouping") {
        hot_grouping();
    }
    if matches!(which.as_str(), "all" | "two-field-peel") {
        two_field_peel();
    }
}

/// §2.4: "Splitting out field time results in a performance degradation
/// of 9%. Splitting out the fields time and mark results in a performance
/// degradation of 35%." — hot fields must stay in the hot section.
fn mcf_force() {
    println!("== §2.4 forced-split anecdote (mcf node_t) ==");
    let prog = build_mcf(InputSet::Training);
    for (label, fields, paper) in [
        ("split out {time}", vec!["time"], -9.0),
        ("split out {time, mark}", vec!["time", "mark"], -35.0),
    ] {
        // force the named hot fields out, along with the naturally cold
        // ones (so the comparison matches the paper: cold fields split
        // either way, the experiment adds hot fields to the cold set)
        let mut cold = vec!["number", "sibling_prev", "firstout", "firstin", "flow"];
        cold.extend(fields.iter().copied());
        let plan = forced_split(&prog, "node", &cold).expect("plan");
        let q = apply_plan(&prog, &plan).expect("rewrite");
        // baseline: the *good* split (cold fields only)
        let base_plan = forced_split(
            &prog,
            "node",
            &["number", "sibling_prev", "firstout", "firstin", "flow"],
        )
        .expect("base plan");
        let base = apply_plan(&prog, &base_plan).expect("base rewrite");
        let eval = evaluate(&base, &q, &VmOptions::default()).expect("evaluate");
        // speedup of q relative to the good split; negative = degradation
        println!(
            "  {label:<26} perf vs good split: {:>6.1}%   (paper: {paper:>5.1}%)",
            eval.speedup_percent()
        );
    }
    println!();
}

/// §3.4 case study 1: grouping the 4 hot fields of a >128-byte struct.
fn hot_grouping() {
    println!("== §3.4 case study: hot-field grouping (+2.5% in the paper) ==");
    let prog = spec2006_cpp(12_000, 4);
    let grouped = reorder_by_names(&prog, "big_s", &cpp_grouped_order()).expect("reorder");
    let eval = evaluate(&prog, &grouped, &VmOptions::default()).expect("evaluate");
    println!(
        "  grouping hot fields: {:+.1}%   (paper: +2.5%)",
        eval.speedup_percent()
    );
    println!();
}

/// §3.4 case study 2: peeling the two-field record (+40%; +80% with
/// unrolling).
fn two_field_peel() {
    println!("== §3.4 case study: two-field peeling (+40% / +80% in the paper) ==");
    for (label, unroll, paper) in [("rolled", false, 40.0), ("unrolled x4", true, 80.0)] {
        let prog = spec2006_c(400_000, 6, unroll);
        let peeled = peel_by_name(&prog, "fi_pair").expect("peel");
        let eval = evaluate(&prog, &peeled, &VmOptions::default()).expect("evaluate");
        println!(
            "  {label:<12} peeling: {:+.1}%   (paper: about +{paper:.0}%)",
            eval.speedup_percent()
        );
    }
    println!();
}
