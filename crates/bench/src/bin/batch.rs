//! Load generator for the batch-optimization service.
//!
//! Synthesizes a mixed batch of optimization jobs over the paper's
//! workload models (mcf, art, moldyn, plus kernel variants) crossed with
//! the static estimator family, then drives `slo_service::Service`
//! through the claims the service makes:
//!
//! 1. **determinism** — the parallel batch is bit-identical to the
//!    sequential (1 worker, cache off) run of the same jobs;
//! 2. **caching** — an identical second batch on the same service hits
//!    the analysis cache for (nearly) every job;
//! 3. **isolation** — an injected panicking job and an over-budget job
//!    degrade to advisory outcomes without failing the batch.
//!
//! Any violated claim exits nonzero, so CI can use this driver as a
//! smoke gate. `--json` merges the measurements into `BENCH_vm.json`
//! under `batch` (wall-clock speedup is reported, not asserted — it is a
//! property of the host's core count, not of the service).
//!
//! `--kill-restart` runs the persistent-store campaign instead: a real
//! `slo serve --store` process is SIGKILLed mid-batch, a fresh `slo
//! batch --store` process completes and then reruns the manifest, and
//! the cross-process warm-start hit rate (≥90% required), crash
//! tolerance and bit-rot recompute-not-serve guarantee are asserted and
//! recorded under `store` in `BENCH_vm.json`. `--rot-seeds N` widens
//! the bit-rot sweep (default 4; the nightly job runs 64) and
//! `--compact` compacts each rotted store before the cold reread.
//!
//! ```text
//! batch [--jobs N] [--workers N] [--json]
//!       [--kill-restart [--rot-seeds N] [--compact]]
//! ```

use bench::report::{json_flag, record_batch, record_store, BatchStats, StoreStats};
use slo_service::{
    AnalysisStore, Budget, ChaosConfig, Degradation, Fault, FaultPlan, Job, JobOutcome, JobStatus,
    SchemeSpec, Service, ServiceConfig, Site,
};
use slo_workloads::art::{self, ArtConfig};
use slo_workloads::kernel;
use slo_workloads::mcf::{self, McfConfig};
use slo_workloads::moldyn::{self, MoldynConfig};
use std::time::Instant;

/// The comparable essence of an outcome: everything except timings.
fn digest(o: &JobOutcome) -> String {
    match &o.status {
        JobStatus::Optimized(opt) => format!(
            "{} optimized {} {} {} {} {} {:016x}\n{}",
            o.id,
            opt.num_transformed,
            opt.eval.baseline_cycles,
            opt.eval.optimized_cycles,
            opt.eval.baseline_instructions,
            opt.eval.optimized_instructions,
            opt.ipa_fingerprint,
            opt.transformed
        ),
        JobStatus::Advisory { reason, report } => format!(
            "{} advisory {} {}",
            o.id,
            reason.kind(),
            report.as_deref().unwrap_or("-")
        ),
        JobStatus::Failed(msg) => format!("{} failed {msg}", o.id),
    }
}

// A small pool of distinct programs: three workload models at
// load-test sizes plus three kernel variants. Repeats of the same
// (program, scheme, config) are what the analysis cache feeds on.
fn program_pool() -> Vec<(&'static str, slo_ir::Program)> {
    vec![
        (
            "mcf",
            mcf::build_config(McfConfig {
                n: 600,
                iters: 4,
                skew: 0,
            }),
        ),
        ("art", art::build_config(ArtConfig { n: 1500, passes: 2 })),
        (
            "moldyn",
            moldyn::build_config(MoldynConfig {
                n: 600,
                steps: 2,
                neighbors: 6,
            }),
        ),
        ("kernel64", kernel::build(64, 400)),
        ("kernel128", kernel::build(128, 400)),
        ("kernel256", kernel::build(256, 400)),
    ]
}

const SCHEMES: [SchemeSpec; 4] = [
    SchemeSpec::Ispbo,
    SchemeSpec::Spbo,
    SchemeSpec::IspboNo,
    SchemeSpec::IspboW,
];

fn build_jobs(n: usize) -> Vec<Job> {
    let programs = program_pool();
    let schemes = SCHEMES;
    (0..n)
        .map(|i| {
            let (name, prog) = &programs[i % programs.len()];
            let scheme = schemes[(i / programs.len()) % schemes.len()].clone();
            Job::from_program(format!("{name}#{i}"), prog.clone()).scheme(scheme)
        })
        .collect()
}

fn flag_value(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

// --- the kill-and-restart store campaign --------------------------------

/// The `slo` binary next to this driver (`SLO_BIN` overrides, for
/// running outside the target directory).
fn slo_bin() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("SLO_BIN") {
        return p.into();
    }
    std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("exe dir")
        .join(format!("slo{}", std::env::consts::EXE_SUFFIX))
}

/// Extract `"key": N` from the CLI's flat metrics JSON line.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let at = line.find(&tag)? + tag.len();
    line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .ok()
}

/// The per-job result lines of a `slo batch` run, with the `[cached]`
/// marker stripped: whether an analysis came from the LRU, the store or
/// a recompute may differ between runs — the optimization *bits* may
/// not.
fn outcome_lines(stdout: &str) -> Vec<String> {
    stdout
        .lines()
        .filter(|l| {
            let mut tok = l.split_whitespace();
            tok.next().is_some() && matches!(tok.next(), Some("optimized" | "advisory" | "failed"))
        })
        .map(|l| l.trim_end().trim_end_matches(" [cached]").to_string())
        .collect()
}

/// Run the cross-process campaign: populate a store through a `slo
/// serve --store` process and SIGKILL it mid-batch, complete the
/// manifest in a fresh `slo batch --store` process, then rerun it
/// cold to measure the warm-start hit rate; finish with an in-process
/// bit-rot sweep (`rot_seeds` seeds; with `compact`, each rotted
/// store is compacted before the cold reread, so the sweep also
/// proves compaction never copies damage forward). Returns the number
/// of failed checks.
fn kill_restart_campaign(num_jobs: usize, rot_seeds: usize, compact: bool, json: bool) -> u32 {
    use std::io::{BufRead, BufReader, Write};

    let mut failures = 0u32;
    let tmp = std::env::temp_dir().join(format!("slo-store-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("campaign dir");

    // The same job mix as the in-process batch, as files + a manifest
    // so separate processes resolve identical analysis keys.
    let programs = program_pool();
    let mut manifest = String::new();
    for (name, prog) in &programs {
        std::fs::write(
            tmp.join(format!("{name}.sir")),
            slo_ir::printer::print_program(prog),
        )
        .expect("write program");
    }
    let scheme_names = ["ispbo", "spbo", "ispbo.no", "ispbo.w"];
    let mut lines = Vec::new();
    for i in 0..num_jobs {
        let (name, _) = &programs[i % programs.len()];
        let scheme = scheme_names[(i / programs.len()) % scheme_names.len()];
        lines.push(format!("{name}.sir scheme={scheme}"));
    }
    for l in &lines {
        manifest.push_str(l);
        manifest.push('\n');
    }
    std::fs::write(tmp.join("manifest.txt"), manifest).expect("write manifest");

    // Phase A: serve with a store, SIGKILL mid-batch. Half the lines
    // are answered and durably stored; the rest are in flight when the
    // kill lands, so the active segment may end in a torn append.
    let mut child = std::process::Command::new(slo_bin())
        .args(["serve", "--store", "store"])
        .current_dir(&tmp)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn slo serve");
    let mut stdin = child.stdin.take().expect("serve stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("serve stdout"));
    let answer_before_kill = num_jobs / 2;
    let mut answered = 0usize;
    let mut reply = String::new();
    'feed: for l in &lines[..answer_before_kill] {
        writeln!(stdin, "{l}").expect("feed serve");
        stdin.flush().expect("flush serve stdin");
        loop {
            reply.clear();
            if stdout.read_line(&mut reply).unwrap_or(0) == 0 {
                break 'feed; // serve died early; the store must still replay
            }
            if reply.trim_start().starts_with('{') {
                answered += 1;
                break;
            }
        }
    }
    // Fire the remaining lines without waiting, give the worker a
    // moment to be mid-job (and possibly mid-append), then SIGKILL.
    for l in &lines[answer_before_kill..] {
        let _ = writeln!(stdin, "{l}");
    }
    let _ = stdin.flush();
    std::thread::sleep(std::time::Duration::from_millis(50));
    child.kill().expect("SIGKILL serve");
    let _ = child.wait();
    println!("kill-restart: serve answered {answered} job(s), then SIGKILL");

    // Phase B: a fresh process completes the manifest over the
    // survivor store (replaying the killed process's sealed prefix).
    let run_batch = || {
        let out = std::process::Command::new(slo_bin())
            .args(["batch", "manifest.txt", "--store", "store", "--json"])
            .current_dir(&tmp)
            .output()
            .expect("run slo batch");
        assert!(
            out.status.success(),
            "slo batch --store failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let complete = run_batch();
    let metrics_line = |s: &str| {
        s.lines()
            .rev()
            .find(|l| l.trim_start().starts_with('{'))
            .map(str::to_string)
            .unwrap_or_default()
    };
    let complete_m = metrics_line(&complete);
    let survivors = json_u64(&complete_m, "store_hits").unwrap_or(0);
    println!(
        "kill-restart: completing batch found {survivors} analysis record(s) \
         survived the kill ({} corrupt dropped)",
        json_u64(&complete_m, "store_corrupt_drops").unwrap_or(0)
    );
    if answered > 0 && survivors == 0 {
        println!("FAIL: answered jobs must leave replayable store records");
        failures += 1;
    }

    // Phase C: the warm-start measurement — a cold process over the
    // now-complete store must serve (nearly) everything from disk.
    let warm = run_batch();
    let warm_m = metrics_line(&warm);
    let (hits, misses) = (
        json_u64(&warm_m, "store_hits").unwrap_or(0),
        json_u64(&warm_m, "store_misses").unwrap_or(0),
    );
    let warm_hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    println!(
        "kill-restart: cross-process warm start {hits}/{} store hits ({:.0}%)",
        hits + misses,
        100.0 * warm_hit_rate
    );
    if warm_hit_rate < 0.9 {
        println!(
            "FAIL: warm-start hit rate {:.0}% < 90%",
            100.0 * warm_hit_rate
        );
        failures += 1;
    }
    let mut mismatches = outcome_lines(&complete)
        .iter()
        .zip(outcome_lines(&warm).iter())
        .filter(|(a, b)| a != b)
        .count() as u64;
    if mismatches > 0 {
        println!("FAIL: {mismatches} disk-served outcome(s) differ from computed ones");
        failures += 1;
    } else {
        println!("ok: disk-served outcomes bit-identical to computed");
    }
    let corrupt_drops = json_u64(&complete_m, "store_corrupt_drops").unwrap_or(0)
        + json_u64(&warm_m, "store_corrupt_drops").unwrap_or(0);

    // Bit-rot sweep: seeded in-process campaigns that rot records as
    // they are written, then reread them cold. Rot may cost recomputes
    // (counted), never bits, and a corrupt record is never served.
    let sweep_jobs = build_jobs(12);
    let reference: Vec<String> = Service::new(
        ServiceConfig::builder()
            .workers(1)
            .cache_capacity(0)
            .build(),
    )
    .run_batch(&sweep_jobs)
    .iter()
    .map(digest)
    .collect();
    let mut bitrot_corrupt_drops = 0u64;
    for seed in 0..rot_seeds as u64 {
        let dir = tmp.join(format!("bitrot-{seed}"));
        let plan = FaultPlan::with_config(seed, ChaosConfig::never().rate(Site::StoreBitRot, 512));
        let cfg = ServiceConfig::builder()
            .workers(2)
            .cache_capacity(64)
            .build();
        let writer = Service::new(cfg).with_store(
            AnalysisStore::open(&dir, slo::obs::Recorder::disabled(), plan).expect("open store"),
        );
        let rotted: Vec<String> = writer.run_batch(&sweep_jobs).iter().map(digest).collect();
        drop(writer);
        if compact {
            // Compaction re-verifies every survivor; rotted records
            // die here (counted) instead of at the reader.
            let mut store =
                AnalysisStore::open(&dir, slo::obs::Recorder::disabled(), FaultPlan::disabled())
                    .expect("reopen store for compaction");
            store.compact().expect("compact rotted store");
            bitrot_corrupt_drops += store.counters().corrupt_drops;
        }
        let reader = Service::new(cfg).with_store(
            AnalysisStore::open(&dir, slo::obs::Recorder::disabled(), FaultPlan::disabled())
                .expect("reopen store"),
        );
        let reread: Vec<String> = reader.run_batch(&sweep_jobs).iter().map(digest).collect();
        let m = reader.metrics();
        bitrot_corrupt_drops += m.store_corrupt_drops;
        for run in [&rotted, &reread] {
            mismatches += reference
                .iter()
                .zip(run.iter())
                .filter(|(a, b)| a != b)
                .count() as u64;
        }
    }
    println!(
        "bit-rot sweep: {rot_seeds} seed(s){}, {bitrot_corrupt_drops} corrupt record(s) \
         dropped and recomputed",
        if compact { " with compaction" } else { "" }
    );
    if mismatches > 0 {
        println!("FAIL: {mismatches} outcome(s) changed bits under store corruption");
        failures += 1;
    } else {
        println!("ok: corruption costs recomputes, never bits");
    }

    if json {
        record_store(StoreStats {
            jobs: num_jobs,
            killed_after: answered,
            warm_hit_rate,
            corrupt_drops,
            bitrot_seeds: rot_seeds,
            bitrot_corrupt_drops,
            mismatches,
        });
    }
    if failures == 0 {
        let _ = std::fs::remove_dir_all(&tmp);
    } else {
        // Leave the store directory behind for postmortem (CI uploads
        // it as an artifact on failure).
        println!("campaign artifacts kept at {}", tmp.display());
    }
    failures
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = json_flag(&mut args);
    let num_jobs = flag_value(&args, "--jobs").unwrap_or(64);
    let workers = flag_value(&args, "--workers").unwrap_or(0);
    if args.iter().any(|a| a == "--kill-restart") {
        let rot_seeds = flag_value(&args, "--rot-seeds").unwrap_or(4);
        let compact = args.iter().any(|a| a == "--compact");
        let failures = kill_restart_campaign(num_jobs, rot_seeds, compact, json);
        if failures > 0 {
            println!("{failures} check(s) FAILED");
            std::process::exit(1);
        }
        println!("all store checks passed");
        return;
    }
    let jobs = build_jobs(num_jobs);
    let mut failures = 0u32;

    // 1. sequential reference: one worker, cache disabled.
    let seq_service = Service::new(
        ServiceConfig::builder()
            .workers(1)
            .cache_capacity(0)
            .build(),
    );
    let t0 = Instant::now();
    let seq = seq_service.run_batch(&jobs);
    let seq_secs = t0.elapsed().as_secs_f64();

    // 2. parallel run with caching on a fresh service.
    let service = Service::new(
        ServiceConfig::builder()
            .workers(workers)
            .cache_capacity(256)
            .build(),
    );
    let t1 = Instant::now();
    let par = service.run_batch(&jobs);
    let par_secs = t1.elapsed().as_secs_f64();

    // `workers == 0` means "one per core"; resolve it so the report can
    // tell a genuine parallel run from a single-core container, where a
    // sub-1x "speedup" is pool overhead rather than a regression.
    let effective_workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        workers
    };

    let m = service.metrics();
    if effective_workers <= 1 {
        println!(
            "batch: {num_jobs} jobs, seq {seq_secs:.2}s, par {par_secs:.2}s \
             (single-core, speedup n/a), {} optimized / {} advisory / {} failed",
            m.optimized, m.degraded, m.failed
        );
    } else {
        println!(
            "batch: {num_jobs} jobs, seq {seq_secs:.2}s, par {par_secs:.2}s \
             ({:.2}x on {effective_workers} workers), {} optimized / {} advisory / {} failed",
            seq_secs / par_secs.max(1e-9),
            m.optimized,
            m.degraded,
            m.failed
        );
    }

    // determinism: parallel outcomes must be bit-identical to sequential.
    let mismatches = seq
        .iter()
        .zip(&par)
        .filter(|(a, b)| digest(a) != digest(b))
        .count();
    if mismatches > 0 {
        println!("FAIL: {mismatches} parallel outcome(s) differ from the sequential run");
        failures += 1;
    } else {
        println!("ok: parallel outcomes bit-identical to sequential");
    }
    if m.degraded + m.failed > 0 {
        println!(
            "FAIL: clean batch produced {} degraded and {} failed outcome(s)",
            m.degraded, m.failed
        );
        failures += 1;
    }

    // 3. identical rerun on the same service: analysis should be cached.
    let before = service.metrics();
    let rerun = service.run_batch(&jobs);
    let delta = service.metrics().since(&before);
    let hit_rate = delta.cache_hit_rate();
    println!(
        "rerun: {}/{} analysis-cache hits ({:.0}%)",
        delta.cache_hits,
        delta.cache_hits + delta.cache_misses,
        100.0 * hit_rate
    );
    if hit_rate < 0.9 {
        println!("FAIL: rerun cache hit rate {:.0}% < 90%", 100.0 * hit_rate);
        failures += 1;
    }
    let rerun_mismatches = seq
        .iter()
        .zip(&rerun)
        .filter(|(a, b)| digest(a) != digest(b))
        .count();
    if rerun_mismatches > 0 {
        println!("FAIL: {rerun_mismatches} cached outcome(s) differ from the uncached run");
        failures += 1;
    } else {
        println!("ok: cached outcomes bit-identical to uncached");
    }

    // 4. fault injection: a panicking job and an over-budget job must
    //    degrade to advisory outcomes without taking the batch down.
    let mut faulty = build_jobs(6);
    faulty.push(Job::from_program("inject-panic", kernel::build(64, 400)).fault(Fault::PanicInBe));
    faulty
        .push(Job::from_program("inject-budget", kernel::build(64, 400)).budget(Budget::steps(10)));
    let outcomes = service.run_batch(&faulty);
    let panic_ok = outcomes.iter().any(|o| {
        o.id == "inject-panic"
            && matches!(
                &o.status,
                JobStatus::Advisory {
                    reason: Degradation::Panic(_),
                    ..
                }
            )
    });
    let budget_ok = outcomes.iter().any(|o| {
        o.id == "inject-budget"
            && matches!(
                &o.status,
                JobStatus::Advisory {
                    reason: Degradation::Budget(_),
                    ..
                }
            )
    });
    let rest_ok = outcomes
        .iter()
        .filter(|o| !o.id.starts_with("inject-"))
        .all(|o| matches!(o.status, JobStatus::Optimized(_)));
    for (ok, what) in [
        (panic_ok, "panicking job degrades to advisory"),
        (budget_ok, "over-budget job degrades to advisory"),
        (rest_ok, "healthy jobs unaffected by faulty neighbours"),
    ] {
        if ok {
            println!("ok: {what}");
        } else {
            println!("FAIL: {what}");
            failures += 1;
        }
    }

    if json {
        record_batch(BatchStats {
            jobs: num_jobs,
            workers: effective_workers,
            seq_seconds: seq_secs,
            par_seconds: par_secs,
            rerun_hit_rate: hit_rate,
            degraded: m.degraded,
            failed: m.failed,
        });
    }

    if failures > 0 {
        println!("{failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("all service checks passed");
}
