//! Load generator for the batch-optimization service.
//!
//! Synthesizes a mixed batch of optimization jobs over the paper's
//! workload models (mcf, art, moldyn, plus kernel variants) crossed with
//! the static estimator family, then drives `slo_service::Service`
//! through the claims the service makes:
//!
//! 1. **determinism** — the parallel batch is bit-identical to the
//!    sequential (1 worker, cache off) run of the same jobs;
//! 2. **caching** — an identical second batch on the same service hits
//!    the analysis cache for (nearly) every job;
//! 3. **isolation** — an injected panicking job and an over-budget job
//!    degrade to advisory outcomes without failing the batch.
//!
//! Any violated claim exits nonzero, so CI can use this driver as a
//! smoke gate. `--json` merges the measurements into `BENCH_vm.json`
//! under `batch` (wall-clock speedup is reported, not asserted — it is a
//! property of the host's core count, not of the service).
//!
//! ```text
//! batch [--jobs N] [--workers N] [--json]
//! ```

use bench::report::{json_flag, record_batch, BatchStats};
use slo_service::{
    Budget, Degradation, Fault, Job, JobOutcome, JobStatus, SchemeSpec, Service, ServiceConfig,
};
use slo_workloads::art::{self, ArtConfig};
use slo_workloads::kernel;
use slo_workloads::mcf::{self, McfConfig};
use slo_workloads::moldyn::{self, MoldynConfig};
use std::time::Instant;

/// The comparable essence of an outcome: everything except timings.
fn digest(o: &JobOutcome) -> String {
    match &o.status {
        JobStatus::Optimized(opt) => format!(
            "{} optimized {} {} {} {} {} {:016x}\n{}",
            o.id,
            opt.num_transformed,
            opt.eval.baseline_cycles,
            opt.eval.optimized_cycles,
            opt.eval.baseline_instructions,
            opt.eval.optimized_instructions,
            opt.ipa_fingerprint,
            opt.transformed
        ),
        JobStatus::Advisory { reason, report } => format!(
            "{} advisory {} {}",
            o.id,
            reason.kind(),
            report.as_deref().unwrap_or("-")
        ),
        JobStatus::Failed(msg) => format!("{} failed {msg}", o.id),
    }
}

fn build_jobs(n: usize) -> Vec<Job> {
    // A small pool of distinct programs: three workload models at
    // load-test sizes plus three kernel variants. Repeats of the same
    // (program, scheme, config) are what the analysis cache feeds on.
    let programs = vec![
        (
            "mcf",
            mcf::build_config(McfConfig {
                n: 600,
                iters: 4,
                skew: 0,
            }),
        ),
        ("art", art::build_config(ArtConfig { n: 1500, passes: 2 })),
        (
            "moldyn",
            moldyn::build_config(MoldynConfig {
                n: 600,
                steps: 2,
                neighbors: 6,
            }),
        ),
        ("kernel64", kernel::build(64, 400)),
        ("kernel128", kernel::build(128, 400)),
        ("kernel256", kernel::build(256, 400)),
    ];
    let schemes = [
        SchemeSpec::Ispbo,
        SchemeSpec::Spbo,
        SchemeSpec::IspboNo,
        SchemeSpec::IspboW,
    ];
    (0..n)
        .map(|i| {
            let (name, prog) = &programs[i % programs.len()];
            let scheme = schemes[(i / programs.len()) % schemes.len()].clone();
            Job::from_program(format!("{name}#{i}"), prog.clone()).scheme(scheme)
        })
        .collect()
}

fn flag_value(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = json_flag(&mut args);
    let num_jobs = flag_value(&args, "--jobs").unwrap_or(64);
    let workers = flag_value(&args, "--workers").unwrap_or(0);
    let jobs = build_jobs(num_jobs);
    let mut failures = 0u32;

    // 1. sequential reference: one worker, cache disabled.
    let seq_service = Service::new(
        ServiceConfig::builder()
            .workers(1)
            .cache_capacity(0)
            .build(),
    );
    let t0 = Instant::now();
    let seq = seq_service.run_batch(&jobs);
    let seq_secs = t0.elapsed().as_secs_f64();

    // 2. parallel run with caching on a fresh service.
    let service = Service::new(
        ServiceConfig::builder()
            .workers(workers)
            .cache_capacity(256)
            .build(),
    );
    let t1 = Instant::now();
    let par = service.run_batch(&jobs);
    let par_secs = t1.elapsed().as_secs_f64();

    // `workers == 0` means "one per core"; resolve it so the report can
    // tell a genuine parallel run from a single-core container, where a
    // sub-1x "speedup" is pool overhead rather than a regression.
    let effective_workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        workers
    };

    let m = service.metrics();
    if effective_workers <= 1 {
        println!(
            "batch: {num_jobs} jobs, seq {seq_secs:.2}s, par {par_secs:.2}s \
             (single-core, speedup n/a), {} optimized / {} advisory / {} failed",
            m.optimized, m.degraded, m.failed
        );
    } else {
        println!(
            "batch: {num_jobs} jobs, seq {seq_secs:.2}s, par {par_secs:.2}s \
             ({:.2}x on {effective_workers} workers), {} optimized / {} advisory / {} failed",
            seq_secs / par_secs.max(1e-9),
            m.optimized,
            m.degraded,
            m.failed
        );
    }

    // determinism: parallel outcomes must be bit-identical to sequential.
    let mismatches = seq
        .iter()
        .zip(&par)
        .filter(|(a, b)| digest(a) != digest(b))
        .count();
    if mismatches > 0 {
        println!("FAIL: {mismatches} parallel outcome(s) differ from the sequential run");
        failures += 1;
    } else {
        println!("ok: parallel outcomes bit-identical to sequential");
    }
    if m.degraded + m.failed > 0 {
        println!(
            "FAIL: clean batch produced {} degraded and {} failed outcome(s)",
            m.degraded, m.failed
        );
        failures += 1;
    }

    // 3. identical rerun on the same service: analysis should be cached.
    let before = service.metrics();
    let rerun = service.run_batch(&jobs);
    let delta = service.metrics().since(&before);
    let hit_rate = delta.cache_hit_rate();
    println!(
        "rerun: {}/{} analysis-cache hits ({:.0}%)",
        delta.cache_hits,
        delta.cache_hits + delta.cache_misses,
        100.0 * hit_rate
    );
    if hit_rate < 0.9 {
        println!("FAIL: rerun cache hit rate {:.0}% < 90%", 100.0 * hit_rate);
        failures += 1;
    }
    let rerun_mismatches = seq
        .iter()
        .zip(&rerun)
        .filter(|(a, b)| digest(a) != digest(b))
        .count();
    if rerun_mismatches > 0 {
        println!("FAIL: {rerun_mismatches} cached outcome(s) differ from the uncached run");
        failures += 1;
    } else {
        println!("ok: cached outcomes bit-identical to uncached");
    }

    // 4. fault injection: a panicking job and an over-budget job must
    //    degrade to advisory outcomes without taking the batch down.
    let mut faulty = build_jobs(6);
    faulty.push(Job::from_program("inject-panic", kernel::build(64, 400)).fault(Fault::PanicInBe));
    faulty
        .push(Job::from_program("inject-budget", kernel::build(64, 400)).budget(Budget::steps(10)));
    let outcomes = service.run_batch(&faulty);
    let panic_ok = outcomes.iter().any(|o| {
        o.id == "inject-panic"
            && matches!(
                &o.status,
                JobStatus::Advisory {
                    reason: Degradation::Panic(_),
                    ..
                }
            )
    });
    let budget_ok = outcomes.iter().any(|o| {
        o.id == "inject-budget"
            && matches!(
                &o.status,
                JobStatus::Advisory {
                    reason: Degradation::Budget(_),
                    ..
                }
            )
    });
    let rest_ok = outcomes
        .iter()
        .filter(|o| !o.id.starts_with("inject-"))
        .all(|o| matches!(o.status, JobStatus::Optimized(_)));
    for (ok, what) in [
        (panic_ok, "panicking job degrades to advisory"),
        (budget_ok, "over-budget job degrades to advisory"),
        (rest_ok, "healthy jobs unaffected by faulty neighbours"),
    ] {
        if ok {
            println!("ok: {what}");
        } else {
            println!("FAIL: {what}");
            failures += 1;
        }
    }

    if json {
        record_batch(BatchStats {
            jobs: num_jobs,
            workers: effective_workers,
            seq_seconds: seq_secs,
            par_seconds: par_secs,
            rerun_hit_rate: hit_rate,
            degraded: m.degraded,
            failed: m.failed,
        });
    }

    if failures > 0 {
        println!("{failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("all service checks passed");
}
