//! Shared helpers for the experiment binaries (tables, figures, case
//! studies) and the Criterion benches.

pub mod par;
pub mod report;

use slo::analysis::WeightScheme;
use slo::pipeline::{compile, evaluate, PipelineConfig};
use slo_vm::VmOptions;
use slo_workloads::Workload;

/// Format a percentage column with one decimal, right-aligned.
pub fn pct(v: f64) -> String {
    format!("{v:>7.1}")
}

/// Format an optional paper value.
pub fn opt_pct(v: Option<f64>) -> String {
    match v {
        Some(x) => pct(x),
        None => "      -".to_string(),
    }
}

/// One measured Table 3 row.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Whether a profile was used.
    pub pbo: bool,
    /// Total record types.
    pub types: usize,
    /// Transformed types.
    pub transformed: usize,
    /// Split-out fields.
    pub split_fields: usize,
    /// Dead fields removed.
    pub dead_fields: usize,
    /// Measured performance impact in percent.
    pub perf: f64,
    /// The paper's value for the same configuration, if printed.
    pub paper: Option<f64>,
    /// Simulated instructions retired (baseline + optimized runs).
    pub instructions: u64,
    /// Simulated cycles (baseline + optimized runs).
    pub cycles: u64,
}

/// Run the full pipeline on a workload (optionally with PBO) and measure
/// the before/after cycle change on the simulated machine.
///
/// # Panics
///
/// Panics when compilation or execution fails — experiment binaries want
/// loud failures.
pub fn measure(w: &Workload, pbo: bool) -> PerfRow {
    let feedback = if pbo {
        Some(slo::collect_profile(&w.program).expect("profile collection"))
    } else {
        None
    };
    let scheme = match &feedback {
        Some(fb) => WeightScheme::Pbo(fb),
        None => WeightScheme::Ispbo,
    };
    let res = compile(&w.program, &scheme, &PipelineConfig::default()).expect("pipeline");
    let eval = evaluate(&w.program, &res.program, &VmOptions::default()).expect("evaluate");

    let mut split_fields = 0;
    let mut dead_fields = 0;
    for t in res.plan.types.values() {
        let (s, d) = t.sd_count();
        split_fields += s;
        dead_fields += d;
    }
    PerfRow {
        name: w.name,
        pbo,
        types: w.paper.types,
        transformed: res.plan.num_transformed(),
        split_fields,
        dead_fields,
        perf: eval.speedup_percent(),
        paper: if pbo {
            w.paper.perf_pbo
        } else {
            w.paper.perf_nopbo
        },
        instructions: eval.baseline_instructions + eval.optimized_instructions,
        cycles: eval.baseline_cycles + eval.optimized_cycles,
    }
}
