//! `BENCH_vm.json` — the execution-substrate performance trajectory.
//!
//! Every driver run with `--json` (and the `interp_hot_loop` Criterion
//! bench) records how fast the simulated machine itself executes on the
//! host: instructions/second of the VM hot loop, total simulated cycles,
//! and wall time per table. Successive PRs append to the same file, so
//! the substrate's own speed is tracked like any other benchmark.
//!
//! The container has no serde, so this module carries a deliberately
//! small JSON value type with a printer and a recursive-descent parser —
//! just enough to round-trip the file it owns.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Trajectory file name, resolved at the workspace root by default.
pub const BENCH_JSON: &str = "BENCH_vm.json";

/// Where to read/write the trajectory file: `BENCH_JSON_PATH` if set,
/// else `BENCH_vm.json` at the workspace root. Binaries (`cargo run`)
/// and benches (`cargo bench`) get different working directories, so
/// the default is anchored to this crate's manifest, not the CWD.
fn bench_json_path() -> PathBuf {
    match std::env::var("BENCH_JSON_PATH") {
        Ok(p) => PathBuf::from(p),
        Err(_) => Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(BENCH_JSON),
    }
}

/// A JSON value. Objects use a `BTreeMap` so output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; counters here stay well below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Empty object.
    pub fn object() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Insert into an object (panics if `self` is not an object).
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(m) => {
                m.insert(key.to_string(), value);
            }
            _ => panic!("Json::set on a non-object"),
        }
    }

    /// Fetch a key from an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Fetch a key from an object, inserting an empty object if absent
    /// or if the existing value is not an object.
    pub fn entry_object(&mut self, key: &str) -> &mut Json {
        let Json::Obj(m) = self else {
            panic!("Json::entry_object on a non-object")
        };
        let e = m.entry(key.to_string()).or_insert_with(Json::object);
        if !matches!(e, Json::Obj(_)) {
            *e = Json::object();
        }
        e
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    let _ = write!(out, "{}{pad}", if i == 0 { "\n" } else { ",\n" });
                    v.write(out, indent + 1);
                }
                let _ = write!(out, "\n{close}]");
            }
            Json::Obj(m) => {
                if m.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    let _ = write!(out, "{}{pad}", if i == 0 { "\n" } else { ",\n" });
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                let _ = write!(out, "\n{close}}}");
            }
        }
    }

    /// Parse a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a short position-tagged message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Load and parse a file; `None` if it doesn't exist or is invalid
    /// (a corrupt trajectory file is started over, not fatal).
    pub fn load(path: &Path) -> Option<Json> {
        let text = std::fs::read_to_string(path).ok()?;
        Json::parse(&text).ok()
    }

    /// Write the pretty form to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.pretty())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut m = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(m));
            }
            loop {
                skip_ws(b, pos);
                let Json::Str(key) = parse_string(b, pos)? else {
                    unreachable!()
                };
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                m.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(m));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number `{text}` at byte {start}"))
        }
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(Json::Str(s));
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // advance one whole UTF-8 scalar
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                s.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

/// One driver's substrate measurement for the trajectory file.
#[derive(Debug, Clone, Copy)]
pub struct TableStats {
    /// Wall-clock seconds for the whole driver run.
    pub wall_seconds: f64,
    /// Total simulated instructions retired across all VM runs.
    pub instructions: u64,
    /// Total simulated cycles across all VM runs.
    pub cycles: u64,
}

impl TableStats {
    /// Host-side VM throughput (simulated instructions per wall second).
    pub fn instr_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.instructions as f64 / self.wall_seconds
    }

    fn to_json(self) -> Json {
        let mut o = Json::object();
        o.set("wall_seconds", Json::Num(self.wall_seconds));
        o.set("instructions", Json::Num(self.instructions as f64));
        o.set("cycles", Json::Num(self.cycles as f64));
        o.set("instr_per_sec", Json::Num(self.instr_per_sec()));
        o
    }
}

/// Merge one table's stats into `BENCH_vm.json` (path overridable via
/// the `BENCH_JSON_PATH` environment variable) and report what was
/// written. Call only when the driver saw `--json`.
pub fn record_table(table: &str, stats: TableStats) {
    let path = bench_json_path();
    let path = path.as_path();
    let mut root = Json::load(path).unwrap_or_else(Json::object);
    if !matches!(root, Json::Obj(_)) {
        root = Json::object();
    }
    root.set("schema", Json::Str("slo-bench-v1".to_string()));
    root.entry_object("tables").set(table, stats.to_json());
    match root.save(path) {
        Ok(()) => eprintln!(
            "[json] {table}: {:.2}s wall, {} simulated instructions, {:.2e} instr/s -> {}",
            stats.wall_seconds,
            stats.instructions,
            stats.instr_per_sec(),
            path.display()
        ),
        Err(e) => eprintln!("[json] failed to write {}: {e}", path.display()),
    }
}

/// Merge one `interp_hot_loop` engine comparison into `BENCH_vm.json`
/// under `hot_loop.<bench>`: host-side instructions/second for each
/// engine and the decoded/structured speedup ratio.
pub fn record_hot_loop(bench: &str, decoded_ips: f64, structured_ips: f64) {
    let path = bench_json_path();
    let path = path.as_path();
    let mut root = Json::load(path).unwrap_or_else(Json::object);
    if !matches!(root, Json::Obj(_)) {
        root = Json::object();
    }
    root.set("schema", Json::Str("slo-bench-v1".to_string()));
    let mut entry = Json::object();
    entry.set("decoded_instr_per_sec", Json::Num(decoded_ips));
    entry.set("structured_instr_per_sec", Json::Num(structured_ips));
    let speedup = if structured_ips > 0.0 {
        decoded_ips / structured_ips
    } else {
        0.0
    };
    entry.set("speedup", Json::Num(speedup));
    root.entry_object("hot_loop").set(bench, entry);
    match root.save(path) {
        Ok(()) => eprintln!(
            "[json] hot_loop/{bench}: decoded {decoded_ips:.2e} i/s, structured \
             {structured_ips:.2e} i/s, {speedup:.2}x -> {}",
            path.display()
        ),
        Err(e) => eprintln!("[json] failed to write {}: {e}", path.display()),
    }
}

/// Merge tracing-overhead measurements for one `interp_hot_loop` bench
/// into `hot_loop.<bench>` (alongside the engine comparison recorded by
/// [`record_hot_loop`]): throughput with the default options, with an
/// explicit no-op recorder, and with an enabled sampled recorder, plus
/// the no-op overhead in percent (the tentpole's ≤ 3% budget).
pub fn record_hot_loop_trace(bench: &str, baseline_ips: f64, noop_ips: f64, sampled_ips: f64) {
    let path = bench_json_path();
    let path = path.as_path();
    let mut root = Json::load(path).unwrap_or_else(Json::object);
    if !matches!(root, Json::Obj(_)) {
        root = Json::object();
    }
    root.set("schema", Json::Str("slo-bench-v1".to_string()));
    let overhead_pct = if noop_ips > 0.0 {
        (baseline_ips / noop_ips - 1.0) * 100.0
    } else {
        0.0
    };
    let entry = root.entry_object("hot_loop").entry_object(bench);
    entry.set("untraced_instr_per_sec", Json::Num(baseline_ips));
    entry.set("noop_trace_instr_per_sec", Json::Num(noop_ips));
    entry.set("sampled_trace_instr_per_sec", Json::Num(sampled_ips));
    entry.set("noop_trace_overhead_pct", Json::Num(overhead_pct));
    match root.save(path) {
        Ok(()) => eprintln!(
            "[json] hot_loop/{bench} tracing: untraced {baseline_ips:.2e} i/s, \
             no-op {noop_ips:.2e} i/s ({overhead_pct:+.2}%), sampled {sampled_ips:.2e} i/s -> {}",
            path.display()
        ),
        Err(e) => eprintln!("[json] failed to write {}: {e}", path.display()),
    }
}

/// One pipeline phase's share of a traced compile, for the `phases`
/// object of `BENCH_vm.json`.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStat {
    /// Wall-clock seconds summed over the phase's spans.
    pub wall_seconds: f64,
    /// Number of spans recorded for the phase.
    pub spans: u64,
}

/// Merge a per-phase wall-clock breakdown (from a traced compile) into
/// `BENCH_vm.json` under `phases.<source>`. Call only under `--json`.
pub fn record_phases(source: &str, phases: &[(String, PhaseStat)]) {
    let path = bench_json_path();
    let path = path.as_path();
    let mut root = Json::load(path).unwrap_or_else(Json::object);
    if !matches!(root, Json::Obj(_)) {
        root = Json::object();
    }
    root.set("schema", Json::Str("slo-bench-v1".to_string()));
    let mut entry = Json::object();
    for (name, stat) in phases {
        let mut o = Json::object();
        o.set("wall_seconds", Json::Num(stat.wall_seconds));
        o.set("spans", Json::Num(stat.spans as f64));
        entry.set(name, o);
    }
    root.entry_object("phases").set(source, entry);
    match root.save(path) {
        Ok(()) => eprintln!(
            "[json] phases/{source}: {} phase(s) -> {}",
            phases.len(),
            path.display()
        ),
        Err(e) => eprintln!("[json] failed to write {}: {e}", path.display()),
    }
}

/// The batch load-generator's measurements for the trajectory file.
#[derive(Debug, Clone, Copy)]
pub struct BatchStats {
    /// Jobs in the generated batch.
    pub jobs: usize,
    /// Worker threads of the parallel run.
    pub workers: usize,
    /// Wall-clock seconds for the sequential (1 worker, no cache) run.
    pub seq_seconds: f64,
    /// Wall-clock seconds for the parallel run.
    pub par_seconds: f64,
    /// Analysis-cache hit rate of the repeated identical batch.
    pub rerun_hit_rate: f64,
    /// Degraded (advisory) outcomes in the clean batch.
    pub degraded: u64,
    /// Failed outcomes in the clean batch.
    pub failed: u64,
}

/// Merge the batch load-generator's stats into `BENCH_vm.json` under
/// `batch`. Call only when the driver saw `--json`.
pub fn record_batch(stats: BatchStats) {
    let path = bench_json_path();
    let path = path.as_path();
    let mut root = Json::load(path).unwrap_or_else(Json::object);
    if !matches!(root, Json::Obj(_)) {
        root = Json::object();
    }
    root.set("schema", Json::Str("slo-bench-v1".to_string()));
    let speedup = if stats.par_seconds > 0.0 {
        stats.seq_seconds / stats.par_seconds
    } else {
        0.0
    };
    let mut entry = Json::object();
    entry.set("jobs", Json::Num(stats.jobs as f64));
    entry.set("workers", Json::Num(stats.workers as f64));
    entry.set("seq_seconds", Json::Num(stats.seq_seconds));
    entry.set("par_seconds", Json::Num(stats.par_seconds));
    entry.set("speedup", Json::Num(speedup));
    // On a single-core host the "parallel" run pays pool overhead with
    // nothing to parallelize; flag the reading so the trajectory isn't
    // misread as a parallel-scaling regression.
    let single_core = stats.workers <= 1;
    if single_core {
        entry.set("speedup_note", Json::Str("single-core".to_string()));
    }
    entry.set("rerun_hit_rate", Json::Num(stats.rerun_hit_rate));
    entry.set("degraded", Json::Num(stats.degraded as f64));
    entry.set("failed", Json::Num(stats.failed as f64));
    root.set("batch", entry);
    let speedup_text = if single_core {
        "single-core, speedup n/a".to_string()
    } else {
        format!("{speedup:.2}x on {} workers", stats.workers)
    };
    match root.save(path) {
        Ok(()) => eprintln!(
            "[json] batch: {} jobs, seq {:.2}s, par {:.2}s ({speedup_text}), \
             rerun hit rate {:.0}% -> {}",
            stats.jobs,
            stats.seq_seconds,
            stats.par_seconds,
            100.0 * stats.rerun_hit_rate,
            path.display()
        ),
        Err(e) => eprintln!("[json] failed to write {}: {e}", path.display()),
    }
}

/// The kill-and-restart store campaign's tallies for the trajectory
/// file.
#[derive(Debug, Clone, Copy)]
pub struct StoreStats {
    /// Jobs in the manifest each process ran.
    pub jobs: usize,
    /// Replies received before the serve process was SIGKILLed.
    pub killed_after: usize,
    /// Persistent-store hit rate of the restarted (cold-LRU) batch —
    /// the cross-process warm-start rate.
    pub warm_hit_rate: f64,
    /// Corrupt records dropped across the restart runs (torn tails
    /// from the kill, never served).
    pub corrupt_drops: u64,
    /// Seeds swept in the in-process bit-rot campaign.
    pub bitrot_seeds: usize,
    /// Corrupt records dropped and recomputed across the bit-rot sweep.
    pub bitrot_corrupt_drops: u64,
    /// Outcomes that differed from the clean reference anywhere in the
    /// campaign (must be 0: corruption may cost recompute time, never
    /// bits).
    pub mismatches: u64,
}

/// Merge the kill-and-restart store campaign's stats into
/// `BENCH_vm.json` under `store`. Call only when the driver saw
/// `--json`.
pub fn record_store(stats: StoreStats) {
    let path = bench_json_path();
    let path = path.as_path();
    let mut root = Json::load(path).unwrap_or_else(Json::object);
    if !matches!(root, Json::Obj(_)) {
        root = Json::object();
    }
    root.set("schema", Json::Str("slo-bench-v1".to_string()));
    let mut entry = Json::object();
    entry.set("jobs", Json::Num(stats.jobs as f64));
    entry.set("killed_after", Json::Num(stats.killed_after as f64));
    entry.set("warm_hit_rate", Json::Num(stats.warm_hit_rate));
    entry.set("corrupt_drops", Json::Num(stats.corrupt_drops as f64));
    entry.set("bitrot_seeds", Json::Num(stats.bitrot_seeds as f64));
    entry.set(
        "bitrot_corrupt_drops",
        Json::Num(stats.bitrot_corrupt_drops as f64),
    );
    entry.set("mismatches", Json::Num(stats.mismatches as f64));
    root.set("store", entry);
    match root.save(path) {
        Ok(()) => eprintln!(
            "[json] store: {} jobs, killed after {}, warm hit rate {:.0}%, \
             {} corrupt dropped, bit-rot sweep {} seeds ({} dropped), {} mismatches -> {}",
            stats.jobs,
            stats.killed_after,
            100.0 * stats.warm_hit_rate,
            stats.corrupt_drops,
            stats.bitrot_seeds,
            stats.bitrot_corrupt_drops,
            stats.mismatches,
            path.display()
        ),
        Err(e) => eprintln!("[json] failed to write {}: {e}", path.display()),
    }
}

/// The chaos campaign driver's tallies for the trajectory file.
#[derive(Debug, Clone, Copy)]
pub struct ChaosStats {
    /// Campaign seeds swept.
    pub seeds: usize,
    /// Jobs per campaign.
    pub jobs_per_seed: usize,
    /// Degradation-ladder violations (must be 0: optimized bits changed
    /// or a parseable input failed).
    pub violations: usize,
    /// Total faults injected across all campaigns and sites.
    pub faults_injected: u64,
    /// Supervisor retries across all campaigns.
    pub retries: u64,
    /// Quarantined jobs across all campaigns.
    pub quarantined: u64,
    /// Optimized outcomes across all campaigns.
    pub optimized: u64,
    /// Advisory outcomes across all campaigns.
    pub advisory: u64,
}

/// Merge the chaos driver's tallies into `BENCH_vm.json` under `chaos`.
/// Call only when the driver saw `--json`.
pub fn record_chaos(stats: ChaosStats) {
    let path = bench_json_path();
    let path = path.as_path();
    let mut root = Json::load(path).unwrap_or_else(Json::object);
    if !matches!(root, Json::Obj(_)) {
        root = Json::object();
    }
    root.set("schema", Json::Str("slo-bench-v1".to_string()));
    let mut entry = Json::object();
    entry.set("seeds", Json::Num(stats.seeds as f64));
    entry.set("jobs_per_seed", Json::Num(stats.jobs_per_seed as f64));
    entry.set("violations", Json::Num(stats.violations as f64));
    entry.set("faults_injected", Json::Num(stats.faults_injected as f64));
    entry.set("retries", Json::Num(stats.retries as f64));
    entry.set("quarantined", Json::Num(stats.quarantined as f64));
    entry.set("optimized", Json::Num(stats.optimized as f64));
    entry.set("advisory", Json::Num(stats.advisory as f64));
    root.set("chaos", entry);
    match root.save(path) {
        Ok(()) => eprintln!(
            "[json] chaos: {} seed(s) x {} jobs, {} fault(s), {} violation(s) -> {}",
            stats.seeds,
            stats.jobs_per_seed,
            stats.faults_injected,
            stats.violations,
            path.display()
        ),
        Err(e) => eprintln!("[json] failed to write {}: {e}", path.display()),
    }
}

/// The socket-chaos campaign's tallies for the trajectory file.
#[derive(Debug, Clone, Copy)]
pub struct NetChaosStats {
    /// Campaign seeds swept.
    pub seeds: usize,
    /// Job lines sent per seed.
    pub jobs_per_seed: usize,
    /// Ladder violations over the wire (optimized bits changed, or a
    /// valid line answered `failed`/non-transient `error`).
    pub violations: usize,
    /// Connections rejected at accept (accept-storm site + busy).
    pub rejected: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Server-side injected disconnects observed.
    pub disconnects: u64,
    /// Slow-loris closes observed.
    pub slow_closes: u64,
    /// Client-side retries needed to land every job.
    pub client_retries: u64,
}

/// Merge the socket-chaos tallies into `BENCH_vm.json` under
/// `chaos.net`. Call AFTER [`record_chaos`] (which replaces the whole
/// `chaos` object) and only when the driver saw `--json`.
pub fn record_chaos_net(stats: NetChaosStats) {
    let path = bench_json_path();
    let path = path.as_path();
    let mut root = Json::load(path).unwrap_or_else(Json::object);
    if !matches!(root, Json::Obj(_)) {
        root = Json::object();
    }
    root.set("schema", Json::Str("slo-bench-v1".to_string()));
    let mut entry = Json::object();
    entry.set("seeds", Json::Num(stats.seeds as f64));
    entry.set("jobs_per_seed", Json::Num(stats.jobs_per_seed as f64));
    entry.set("violations", Json::Num(stats.violations as f64));
    entry.set("rejected", Json::Num(stats.rejected as f64));
    entry.set("shed", Json::Num(stats.shed as f64));
    entry.set("disconnects", Json::Num(stats.disconnects as f64));
    entry.set("slow_closes", Json::Num(stats.slow_closes as f64));
    entry.set("client_retries", Json::Num(stats.client_retries as f64));
    root.entry_object("chaos").set("net", entry);
    match root.save(path) {
        Ok(()) => eprintln!(
            "[json] chaos.net: {} seed(s) x {} lines, {} shed, {} disconnect(s), {} violation(s) -> {}",
            stats.seeds,
            stats.jobs_per_seed,
            stats.shed,
            stats.disconnects,
            stats.violations,
            path.display()
        ),
        Err(e) => eprintln!("[json] failed to write {}: {e}", path.display()),
    }
}

/// The TCP load driver's tallies for the trajectory file.
#[derive(Debug, Clone, Copy)]
pub struct LoadStats {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests completed (optimized/advisory replies).
    pub completed: usize,
    /// Requests shed with a `retry_after_ms` hint.
    pub sheds: usize,
    /// sheds / (completed + sheds).
    pub shed_rate: f64,
    /// Median reply latency over completed requests, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile reply latency, milliseconds.
    pub p99_ms: f64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// Whole-run wall clock, seconds.
    pub wall_seconds: f64,
}

/// Merge the load driver's tallies into `BENCH_vm.json` under `load`.
/// Call only when the driver saw `--json`.
pub fn record_load(stats: LoadStats) {
    let path = bench_json_path();
    let path = path.as_path();
    let mut root = Json::load(path).unwrap_or_else(Json::object);
    if !matches!(root, Json::Obj(_)) {
        root = Json::object();
    }
    root.set("schema", Json::Str("slo-bench-v1".to_string()));
    let mut entry = Json::object();
    entry.set("clients", Json::Num(stats.clients as f64));
    entry.set("completed", Json::Num(stats.completed as f64));
    entry.set("sheds", Json::Num(stats.sheds as f64));
    entry.set("shed_rate", Json::Num(stats.shed_rate));
    entry.set("p50_ms", Json::Num(stats.p50_ms));
    entry.set("p99_ms", Json::Num(stats.p99_ms));
    entry.set("throughput_rps", Json::Num(stats.throughput_rps));
    entry.set("wall_seconds", Json::Num(stats.wall_seconds));
    root.set("load", entry);
    match root.save(path) {
        Ok(()) => eprintln!(
            "[json] load: {} client(s), {} completed, shed rate {:.1}%, p50 {:.2} ms, p99 {:.2} ms -> {}",
            stats.clients,
            stats.completed,
            100.0 * stats.shed_rate,
            stats.p50_ms,
            stats.p99_ms,
            path.display()
        ),
        Err(e) => eprintln!("[json] failed to write {}: {e}", path.display()),
    }
}

/// Whether `--json` is among the process arguments (and strip it from a
/// caller-collected arg list so positional parsing stays simple).
pub fn json_flag(args: &mut Vec<String>) -> bool {
    let before = args.len();
    args.retain(|a| a != "--json");
    args.len() != before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let src = r#"{"a": [1, 2.5, -3e2], "b": {"nested": true, "s": "q\"\\\n"}, "c": null}"#;
        let v = Json::parse(src).expect("parse");
        let printed = v.pretty();
        assert_eq!(Json::parse(&printed).expect("reparse"), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        let mut o = Json::object();
        o.set("n", Json::Num(12345.0));
        assert!(o.pretty().contains("\"n\": 12345\n"));
    }

    #[test]
    fn entry_object_replaces_non_objects() {
        let mut o = Json::object();
        o.set("tables", Json::Num(1.0));
        o.entry_object("tables").set("t1", Json::Bool(true));
        assert_eq!(
            o.get("tables").and_then(|t| t.get("t1")),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn table_stats_throughput() {
        let s = TableStats {
            wall_seconds: 2.0,
            instructions: 10_000_000,
            cycles: 42,
        };
        assert!((s.instr_per_sec() - 5_000_000.0).abs() < 1e-9);
    }
}
