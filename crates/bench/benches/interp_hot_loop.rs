//! VM hot-loop throughput: pre-decoded engine vs the structured
//! reference interpreter, on the two workloads the paper's headline
//! numbers come from (181.mcf and 179.art).
//!
//! Throughput is reported in simulated instructions per host second —
//! the substrate's own figure of merit. The decoded numbers amortize the
//! decode pass by pre-building the [`DecodedProgram`] once, which is how
//! every repeated-execution consumer (the tables, `evaluate`) uses it.
//!
//! After the Criterion runs, a short manual timing pass records the
//! current decoded/structured instructions-per-second datapoint in
//! `BENCH_vm.json` (under `hot_loop`), so the engine's speed is tracked
//! across PRs like any other benchmark.
//!
//! The same pass measures the observability tax on the decoded hot
//! loop: the default (untraced) options against an explicit no-op
//! recorder — which must stay within 3% (asserted here) — and against
//! an enabled recorder sampling counters every 2^16 steps. A traced
//! compile of the mcf model also contributes the per-phase wall-clock
//! breakdown stored under `phases` in `BENCH_vm.json`.

use criterion::{criterion_group, Criterion, Throughput};
use slo::analysis::WeightScheme;
use slo::PipelineConfig;
use slo_ir::Program;
use slo_obs::{EventKind, Recorder};
use slo_vm::{run, run_decoded, DecodedProgram, VmOptions};
use std::collections::BTreeMap;
use std::hint::black_box;

/// Mid-sized configs: a few million simulated instructions per run, so
/// one Criterion sample holds several full executions.
fn workloads() -> Vec<(&'static str, Program)> {
    vec![
        (
            "mcf",
            slo_workloads::mcf::build_config(slo_workloads::mcf::McfConfig {
                n: 10_000,
                iters: 10,
                skew: 0,
            }),
        ),
        (
            "art",
            slo_workloads::art::build_config(slo_workloads::art::ArtConfig {
                n: 100_000,
                passes: 4,
            }),
        ),
    ]
}

fn bench_hot_loop(c: &mut Criterion) {
    for (name, prog) in workloads() {
        let dec = DecodedProgram::new(&prog);
        let opts = VmOptions::plain();
        let instrs = run_decoded(&prog, &dec, &opts)
            .expect("reference run")
            .stats
            .instructions;

        let mut g = c.benchmark_group(format!("hot_loop/{name}"));
        g.throughput(Throughput::Elements(instrs));
        g.bench_function("decoded", |b| {
            b.iter(|| black_box(run_decoded(&prog, &dec, &opts).expect("decoded run")))
        });
        g.bench_function("structured", |b| {
            let sopts = opts.clone().structured();
            b.iter(|| black_box(run(&prog, &sopts).expect("structured run")))
        });
        g.bench_function("decoded_noop_trace", |b| {
            let topts = VmOptions::builder().trace(Recorder::disabled()).build();
            b.iter(|| black_box(run_decoded(&prog, &dec, &topts).expect("decoded run")))
        });
        g.finish();
    }
}

/// Best-of-3 simulated instructions per host second.
fn instr_per_sec(mut run_once: impl FnMut() -> u64) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..3 {
        let t = std::time::Instant::now();
        let instrs = run_once();
        let secs = t.elapsed().as_secs_f64();
        if secs > 0.0 {
            best = best.max(instrs as f64 / secs);
        }
    }
    best
}

fn record_trajectory() {
    for (name, prog) in workloads() {
        let dec = DecodedProgram::new(&prog);
        let opts = VmOptions::plain();
        let d = instr_per_sec(|| {
            run_decoded(&prog, &dec, &opts)
                .expect("decoded run")
                .stats
                .instructions
        });
        let sopts = opts.clone().structured();
        let s = instr_per_sec(|| {
            run(&prog, &sopts)
                .expect("structured run")
                .stats
                .instructions
        });
        bench::report::record_hot_loop(name, d, s);
    }
}

/// Measure the observability tax on the decoded engine and assert the
/// tentpole's zero-cost-when-disabled budget: an explicit no-op
/// recorder must stay within 3% of the untraced default. Interleaved
/// best-of-3 runs; one re-measure before declaring a violation so a
/// single scheduler hiccup can't fail the bench.
fn record_trace_overhead() {
    for (name, prog) in workloads() {
        let dec = DecodedProgram::new(&prog);
        let noop_opts = VmOptions::builder().trace(Recorder::disabled()).build();
        let sampled_rec = Recorder::with_capacity(1 << 12);
        let sampled_opts = VmOptions::builder()
            .trace(sampled_rec.clone())
            .trace_step_interval(1 << 16)
            .build();
        let measure = |opts: &VmOptions| {
            let mut best = 0.0f64;
            for _ in 0..3 {
                let t = std::time::Instant::now();
                let instrs = run_decoded(&prog, &dec, opts)
                    .expect("decoded run")
                    .stats
                    .instructions;
                let secs = t.elapsed().as_secs_f64();
                if secs > 0.0 {
                    best = best.max(instrs as f64 / secs);
                }
            }
            best
        };
        let untraced_opts = VmOptions::plain();
        let mut baseline = measure(&untraced_opts);
        let mut noop = measure(&noop_opts);
        let mut overhead = if noop > 0.0 {
            baseline / noop - 1.0
        } else {
            0.0
        };
        if overhead > 0.03 {
            baseline = baseline.max(measure(&untraced_opts));
            noop = noop.max(measure(&noop_opts));
            overhead = if noop > 0.0 {
                baseline / noop - 1.0
            } else {
                0.0
            };
        }
        assert!(
            overhead <= 0.03,
            "hot_loop/{name}: no-op recorder costs {:.2}% over the untraced \
             decoded engine (budget: 3%)",
            overhead * 100.0
        );
        let sampled = measure(&sampled_opts);
        bench::report::record_hot_loop_trace(name, baseline, noop, sampled);
    }
}

/// Run one traced compile of the mcf model (plus a text round-trip so a
/// `parse` span is present) and fold the pipeline spans into per-phase
/// wall-clock totals for `phases.compile_mcf`.
fn record_phase_breakdown() {
    let prog = slo_workloads::mcf::build_config(slo_workloads::mcf::McfConfig {
        n: 2_000,
        iters: 4,
        skew: 0,
    });
    let rec = Recorder::enabled();
    {
        let mut s = rec.span("pipeline", "parse");
        let text = slo_ir::printer::print_program(&prog);
        let reparsed = slo_ir::parser::parse(&text).expect("IR text round-trip");
        s.arg("units", reparsed.funcs.len() as u64);
        black_box(reparsed);
    }
    let res = slo::compile_with(
        &prog,
        &WeightScheme::Ispbo,
        &PipelineConfig::default(),
        &rec,
    )
    .expect("traced compile");
    black_box(res);
    let mut agg: BTreeMap<String, bench::report::PhaseStat> = BTreeMap::new();
    for ev in rec.events() {
        if matches!(ev.kind, EventKind::Complete) && ev.cat == "pipeline" && ev.name != "compile" {
            let slot = agg
                .entry(ev.name.clone())
                .or_insert(bench::report::PhaseStat {
                    wall_seconds: 0.0,
                    spans: 0,
                });
            slot.wall_seconds += ev.dur_us as f64 / 1e6;
            slot.spans += 1;
        }
    }
    let phases: Vec<(String, bench::report::PhaseStat)> = agg.into_iter().collect();
    bench::report::record_phases("compile_mcf", &phases);
}

criterion_group!(benches, bench_hot_loop);

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);
    record_trajectory();
    record_trace_overhead();
    record_phase_breakdown();
}
