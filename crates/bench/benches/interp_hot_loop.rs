//! VM hot-loop throughput: pre-decoded engine vs the structured
//! reference interpreter, on the two workloads the paper's headline
//! numbers come from (181.mcf and 179.art).
//!
//! Throughput is reported in simulated instructions per host second —
//! the substrate's own figure of merit. The decoded numbers amortize the
//! decode pass by pre-building the [`DecodedProgram`] once, which is how
//! every repeated-execution consumer (the tables, `evaluate`) uses it.
//!
//! After the Criterion runs, a short manual timing pass records the
//! current decoded/structured instructions-per-second datapoint in
//! `BENCH_vm.json` (under `hot_loop`), so the engine's speed is tracked
//! across PRs like any other benchmark.

use criterion::{criterion_group, Criterion, Throughput};
use slo_ir::Program;
use slo_vm::{run, run_decoded, DecodedProgram, VmOptions};
use std::hint::black_box;

/// Mid-sized configs: a few million simulated instructions per run, so
/// one Criterion sample holds several full executions.
fn workloads() -> Vec<(&'static str, Program)> {
    vec![
        (
            "mcf",
            slo_workloads::mcf::build_config(slo_workloads::mcf::McfConfig {
                n: 10_000,
                iters: 10,
                skew: 0,
            }),
        ),
        (
            "art",
            slo_workloads::art::build_config(slo_workloads::art::ArtConfig {
                n: 100_000,
                passes: 4,
            }),
        ),
    ]
}

fn bench_hot_loop(c: &mut Criterion) {
    for (name, prog) in workloads() {
        let dec = DecodedProgram::new(&prog);
        let opts = VmOptions::plain();
        let instrs = run_decoded(&prog, &dec, &opts)
            .expect("reference run")
            .stats
            .instructions;

        let mut g = c.benchmark_group(format!("hot_loop/{name}"));
        g.throughput(Throughput::Elements(instrs));
        g.bench_function("decoded", |b| {
            b.iter(|| black_box(run_decoded(&prog, &dec, &opts).expect("decoded run")))
        });
        g.bench_function("structured", |b| {
            let sopts = opts.clone().structured();
            b.iter(|| black_box(run(&prog, &sopts).expect("structured run")))
        });
        g.finish();
    }
}

/// Best-of-3 simulated instructions per host second.
fn instr_per_sec(mut run_once: impl FnMut() -> u64) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..3 {
        let t = std::time::Instant::now();
        let instrs = run_once();
        let secs = t.elapsed().as_secs_f64();
        if secs > 0.0 {
            best = best.max(instrs as f64 / secs);
        }
    }
    best
}

fn record_trajectory() {
    for (name, prog) in workloads() {
        let dec = DecodedProgram::new(&prog);
        let opts = VmOptions::plain();
        let d = instr_per_sec(|| {
            run_decoded(&prog, &dec, &opts)
                .expect("decoded run")
                .stats
                .instructions
        });
        let sopts = opts.clone().structured();
        let s = instr_per_sec(|| {
            run(&prog, &sopts)
                .expect("structured run")
                .stats
                .instructions
        });
        bench::report::record_hot_loop(name, d, s);
    }
}

criterion_group!(benches, bench_hot_loop);

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);
    record_trajectory();
}
