//! §2.5 compile-time overhead: the paper reports FE overhead of 2.5% on
//! average (max 5%), IPA below 4%, BE 1% (max 2.5%). This bench measures
//! the absolute cost of each pipeline phase on the mcf workload, plus the
//! throughput of the building-block analyses, so regressions in "compile
//! time" are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use slo::analysis::WeightScheme;
use slo::pipeline::{compile, PipelineConfig};
use slo_analysis::ipa::LegalityConfig;
use slo_workloads::mcf::{build_config, McfConfig};

fn programs() -> slo_ir::Program {
    // small instance: phase cost scales with IR size, not run length
    build_config(McfConfig {
        n: 200,
        iters: 4,
        skew: 0,
    })
}

fn bench_fe_legality(c: &mut Criterion) {
    let p = programs();
    c.bench_function("fe_legality_pass", |b| {
        b.iter(|| std::hint::black_box(slo_analysis::legality::analyze_all_units(&p)))
    });
}

fn bench_ipa_aggregate(c: &mut Criterion) {
    let p = programs();
    let summaries = slo_analysis::legality::analyze_all_units(&p);
    c.bench_function("ipa_aggregate", |b| {
        b.iter(|| {
            std::hint::black_box(slo_analysis::ipa::aggregate(
                &p,
                &summaries,
                &LegalityConfig::default(),
            ))
        })
    });
}

fn bench_affinity(c: &mut Criterion) {
    let p = programs();
    c.bench_function("affinity_graphs_ispbo", |b| {
        b.iter(|| std::hint::black_box(slo::analysis::affinity_graphs(&p, &WeightScheme::Ispbo)))
    });
}

fn bench_whole_pipeline(c: &mut Criterion) {
    let p = programs();
    c.bench_function("pipeline_compile_ispbo", |b| {
        b.iter(|| {
            std::hint::black_box(
                compile(&p, &WeightScheme::Ispbo, &PipelineConfig::default()).expect("pipeline"),
            )
        })
    });
}

fn bench_phase_split(c: &mut Criterion) {
    // report the per-phase timings the pipeline itself measures
    let p = programs();
    let res = compile(&p, &WeightScheme::Ispbo, &PipelineConfig::default()).expect("pipeline");
    println!(
        "phase timings (one compile): FE {:?}, IPA {:?}, BE {:?}",
        res.timings.fe, res.timings.ipa, res.timings.be
    );
    c.bench_function("be_apply_plan", |b| {
        b.iter(|| std::hint::black_box(slo_transform::apply_plan(&p, &res.plan).expect("rewrite")))
    });
}

criterion_group!(
    benches,
    bench_fe_legality,
    bench_ipa_aggregate,
    bench_affinity,
    bench_whole_pipeline,
    bench_phase_split
);
criterion_main!(benches);
