//! Substrate throughput benches: cache simulator, interpreter, parser,
//! loop recognition. These back the claim that the simulated-machine
//! substitution is usable at the paper's working-set sizes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use slo_ir::loops::LoopForest;
use slo_ir::parser::parse;
use slo_vm::{CacheConfig, CacheSim, VmOptions};

fn bench_cache_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("sequential_10k", |b| {
        let mut sim = CacheSim::new(CacheConfig::default());
        b.iter(|| {
            for i in 0..10_000u64 {
                std::hint::black_box(sim.access(0x10000 + i * 8, false));
            }
        })
    });
    g.bench_function("random_10k", |b| {
        let mut sim = CacheSim::new(CacheConfig::default());
        b.iter(|| {
            let mut x = 12345u64;
            for _ in 0..10_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                std::hint::black_box(sim.access(0x10000 + (x % (1 << 24)), false));
            }
        })
    });
    g.finish();
}

const LOOP_SRC: &str = r#"
func main() -> i64 {
bb0:
  r0 = 0
  r1 = 0
  jump bb1
bb1:
  r2 = cmp.lt r0, 1000
  br r2, bb2, bb3
bb2:
  r1 = add r1, r0
  r0 = add r0, 1
  jump bb1
bb3:
  ret r1
}
"#;

fn bench_interpreter(c: &mut Criterion) {
    let p = parse(LOOP_SRC).expect("parse");
    let mut g = c.benchmark_group("vm");
    g.throughput(Throughput::Elements(6_000)); // ~6 instrs/iteration x 1000
    g.bench_function("arith_loop_1k_iters", |b| {
        b.iter(|| std::hint::black_box(slo_vm::run(&p, &VmOptions::default()).expect("run")))
    });
    g.finish();
}

fn bench_parser(c: &mut Criterion) {
    // a mid-sized program: print the mcf model and re-parse it
    let prog = slo_workloads::mcf::build_config(slo_workloads::mcf::McfConfig {
        n: 100,
        iters: 2,
        skew: 0,
    });
    let text = slo_ir::printer::print_program(&prog);
    let mut g = c.benchmark_group("frontend");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("parse_mcf_text", |b| {
        b.iter(|| std::hint::black_box(parse(&text).expect("parse")))
    });
    g.bench_function("print_mcf", |b| {
        b.iter(|| std::hint::black_box(slo_ir::printer::print_program(&prog)))
    });
    g.finish();
}

fn bench_loops(c: &mut Criterion) {
    let prog = slo_workloads::mcf::build_config(slo_workloads::mcf::McfConfig {
        n: 100,
        iters: 2,
        skew: 0,
    });
    let main = prog.main().expect("main");
    let f = prog.func(main);
    c.bench_function("havlak_loop_forest_main", |b| {
        b.iter(|| std::hint::black_box(LoopForest::compute(f)))
    });
}

criterion_group!(
    benches,
    bench_cache_sim,
    bench_interpreter,
    bench_parser,
    bench_loops
);
criterion_main!(benches);
