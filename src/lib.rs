//! Umbrella crate for the SLO reproduction workspace. Re-exports the
//! member crates so integration tests and examples have one import root.

pub use slo_advisor as advisor;
pub use slo_analysis as analysis;
pub use slo_ir as ir;
pub use slo_transform as transform;
pub use slo_vm as vm;
pub use slo_workloads as workloads;
